"""Tests for the observability subsystem (repro.obs) and its wiring.

Covers the metrics primitives (counter/gauge/histogram quantiles), span
nesting and propagation, the slow-query log, the global no-op default,
token-expiry instrumentation at the exact boundary instant under a
simulated clock, the LRU statement cache, per-statement script
attribution, EXPLAIN ANALYZE timings, and the web layer's ``/metrics``
and ``/trace`` endpoints returning live data.
"""

import pytest

import repro.obs as obs_mod
from repro.errors import TokenExpiredError
from repro.obs import Observability, get_observability, set_observability
from repro.obs.events import EventLog, SlowQueryLog
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import NullTracer, Tracer


@pytest.fixture
def obs():
    """Install a live default with a zero slow-query threshold; restore
    the previous default afterwards so tests never leak instrumentation."""
    handle = Observability(enabled=True, slow_query_seconds=0.0)
    previous = set_observability(handle)
    yield handle
    set_observability(previous)


class TestMetrics:
    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.counter("hits", kind="a").inc()
        assert registry.counter("hits").value == 3
        assert registry.counter("hits", kind="a").value == 1
        snap = registry.snapshot()
        assert snap["hits"]["value"] == 3
        assert snap["hits{kind=a}"]["value"] == 1

    def test_gauge_set_inc_dec_and_pull(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4
        pulled = registry.gauge("pulled")
        pulled.set_function(lambda: 42)
        assert registry.snapshot()["pulled"]["value"] == 42

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_quantiles_known_distribution(self):
        hist = Histogram("t")
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.min == 1.0 and hist.max == 100.0
        assert hist.mean == pytest.approx(50.5)
        # linear interpolation over the sorted window
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0
        assert hist.quantile(0.5) == pytest.approx(50.5)
        assert hist.quantile(0.9) == pytest.approx(90.1)
        summary = hist.summary()
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)

    def test_histogram_window_is_bounded(self):
        hist = Histogram("t", window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            hist.observe(value)
        # lifetime aggregates see everything; quantiles only the window
        assert hist.count == 5
        assert hist.min == 1.0
        assert hist.quantile(0.0) == 2.0  # the 1.0 fell out of the window

    def test_empty_histogram(self):
        hist = Histogram("t")
        assert hist.quantile(0.5) == 0.0
        assert hist.summary()["min"] == 0.0
        with pytest.raises(ValueError):
            hist.observe(1.0) or hist.quantile(1.5)

    def test_render_text(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.histogram("h").observe(2.0)
        text = registry.render_text()
        assert "c 7" in text
        assert "h.count 1" in text
        assert "h.p50 2" in text


class TestTracing:
    def test_span_nesting_and_propagation(self):
        tracer = Tracer()
        with tracer.span("outer", layer="web") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert tracer.current is outer
        assert tracer.current is None
        snap = tracer.snapshot()
        # inner finished first
        assert [s["name"] for s in snap] == ["inner", "outer"]
        assert snap[1]["attributes"] == {"layer": "web"}
        assert snap[1]["parent_id"] is None
        assert all(s["duration"] >= 0.0 for s in snap)

    def test_sibling_spans_share_trace(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = tracer.snapshot()
        assert a["parent_id"] == root["span_id"] == b["parent_id"]
        assert a["trace_id"] == b["trace_id"] == root["trace_id"]

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.snapshot()
        assert first["trace_id"] != second["trace_id"]

    def test_error_status_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.snapshot()[0]["status"] == "error"
        assert tracer.current is None  # stack unwound

    def test_ring_buffer_keeps_newest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s["name"] for s in tracer.snapshot()] == ["s2", "s3", "s4"]

    def test_record_external_timing(self):
        tracer = Tracer()
        span = tracer.record("sim", start=100.0, end=4600.0, clock="sim")
        assert span.duration == 4500.0
        assert tracer.snapshot()[0]["attributes"]["clock"] == "sim"

    def test_null_tracer_is_a_context_manager(self):
        tracer = NullTracer()
        with tracer.span("anything", k=1) as span:
            span.set(more=2)
        assert tracer.snapshot() == []


class TestEventsAndSlowQueryLog:
    def test_slow_query_threshold(self):
        events = EventLog()
        log = SlowQueryLog(events, threshold_seconds=0.5)
        assert log.record("SELECT 1", elapsed=0.4) is False
        assert log.record("SELECT 2", elapsed=0.5) is True  # at threshold
        assert log.record("SELECT 3", elapsed=0.9, rows=7) is True
        entries = log.entries()
        assert [e["sql"] for e in entries] == ["SELECT 2", "SELECT 3"]
        assert entries[1]["rows"] == 7

    def test_event_sinks_and_filtering(self):
        events = EventLog(time_source=lambda: 123.0)
        seen = []
        events.add_sink(seen.append)
        events.emit("a", x=1)
        events.emit("b")
        assert len(seen) == 2
        assert seen[0]["ts"] == 123.0 and seen[0]["seq"] == 1
        assert [e["kind"] for e in events.events("a")] == ["a"]

    def test_ring_capacity(self):
        events = EventLog(capacity=2)
        for i in range(4):
            events.emit("e", i=i)
        assert [e["i"] for e in events.events()] == [2, 3]


class TestGlobalDefault:
    def test_default_is_noop(self):
        obs = get_observability()
        assert not obs.enabled
        # every instrument call is safe and free
        obs.metrics.counter("x").inc()
        with obs.tracer.span("y"):
            pass
        obs.events.emit("z")
        assert obs.metrics.render_text() == ""
        assert obs.tracer.snapshot() == []

    def test_enable_disable_roundtrip(self):
        before = get_observability()
        handle = obs_mod.enable()
        try:
            assert get_observability() is handle
            handle.metrics.counter("x").inc()
            assert handle.metrics.counter("x").value == 1
        finally:
            obs_mod.disable()
            set_observability(before)
        assert not get_observability().enabled

    def test_set_observability_returns_previous(self, obs):
        other = Observability(enabled=True)
        previous = set_observability(other)
        assert previous is obs
        set_observability(previous)
        assert get_observability() is obs

    def test_snapshot_shape(self, obs):
        obs.metrics.counter("c").inc()
        with obs.tracer.span("s"):
            pass
        snap = obs.snapshot()
        assert snap["enabled"] is True
        assert "c" in snap["metrics"]
        assert snap["spans"][0]["name"] == "s"


class TestTokenExpiryBoundary:
    """The paper's access tokens have 'a finite life'; the expiry check
    must be exact under a simulated clock: valid *at* the expiry instant
    (millisecond resolution, strict '>'), expired immediately after."""

    def _manager(self, clock):
        from repro.datalink import TokenManager

        return TokenManager(
            secret=b"k", validity_seconds=60.0, time_source=lambda: clock.now
        )

    def test_valid_at_exact_expiry_instant(self, obs):
        from repro.netsim import SimClock

        clock = SimClock()
        manager = self._manager(clock)
        token = manager.issue("fs1/data/ts1.dat")
        clock.advance(60.0)  # exactly the expiry instant
        assert manager.validate("fs1/data/ts1.dat", token) is True
        assert obs.metrics.counter("datalink.tokens_validated").value == 1
        assert obs.metrics.counter("datalink.tokens_expired").value == 0

    def test_expired_just_after_boundary(self, obs):
        from repro.netsim import SimClock

        clock = SimClock()
        manager = self._manager(clock)
        token = manager.issue("fs1/data/ts1.dat")
        clock.advance(60.001)  # one millisecond past expiry
        with pytest.raises(TokenExpiredError):
            manager.validate("fs1/data/ts1.dat", token)
        assert obs.metrics.counter("datalink.tokens_expired").value == 1
        expired = obs.events.events("token.expired")
        assert expired and expired[0]["scope"] == "fs1/data/ts1.dat"

    def test_issue_and_validate_emit_events(self, obs):
        from repro.netsim import SimClock

        manager = self._manager(SimClock())
        token = manager.issue("fs1/f")
        manager.validate("fs1/f", token)
        assert obs.metrics.counter("datalink.tokens_issued").value == 1
        assert [e["kind"] for e in obs.events.events()] == [
            "token.issue",
            "token.validate",
        ]


class TestDatabaseInstrumentation:
    def _db(self, obs_handle=None):
        from repro.sqldb import Database

        db = Database(obs=obs_handle)
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V VARCHAR(10))")
        for i in range(5):
            db.execute("INSERT INTO T VALUES (?, ?)", (i, f"v{i}"))
        return db

    def test_statement_cache_lru_eviction(self):
        from repro.sqldb import Database

        db = Database()
        db.STATEMENT_CACHE_SIZE = 3
        db.execute("CREATE TABLE T (K INTEGER)")
        for i in range(4):  # 4 distinct statements through a cache of 3
            db.execute(f"INSERT INTO T VALUES ({i})")
        assert len(db._statement_cache) == 3
        first = "INSERT INTO T VALUES (0)"
        assert first not in db._statement_cache  # least-recent got evicted
        # re-touching an entry protects it from the next eviction
        db.execute("INSERT INTO T VALUES (1)")  # hit: moves to MRU
        db.execute("INSERT INTO T VALUES (9)")  # evicts VALUES (2), not (1)
        assert "INSERT INTO T VALUES (1)" in db._statement_cache
        assert "INSERT INTO T VALUES (2)" not in db._statement_cache

    def test_statement_cache_stats(self):
        db = self._db()
        db.execute("SELECT COUNT(*) FROM T")
        db.execute("SELECT COUNT(*) FROM T")
        stats = db.statement_cache_stats
        assert stats["hits"] >= 5  # the four repeated INSERTs + repeated SELECT
        assert stats["misses"] >= 2
        assert 0.0 < stats["hit_ratio"] < 1.0
        assert stats["entries"] == len(db._statement_cache)

    def test_statement_metrics_and_spans(self, obs):
        db = self._db(obs)
        db.execute("SELECT * FROM T WHERE K > ?", (1,))
        assert obs.metrics.counter("sql.statements", kind="SELECT").value == 1
        assert obs.metrics.counter("sql.rows_returned").value == 3
        assert obs.metrics.counter("sql.rows_scanned").value >= 3
        names = [s["name"] for s in obs.tracer.snapshot()]
        assert "sql.statement" in names
        select_span = [
            s for s in obs.tracer.snapshot()
            if s["attributes"].get("statement") == "SELECT"
        ][0]
        assert "WHERE K > ?" in select_span["attributes"]["sql"]

    def test_slow_query_log_attribution_in_scripts(self, obs):
        db = self._db(obs)
        db.execute_script(
            "INSERT INTO T VALUES (100, 'x'); SELECT COUNT(*) FROM T"
        )
        slow = obs.slow_query.entries()  # threshold 0: everything logs
        texts = [e["sql"] for e in slow]
        assert "INSERT INTO T VALUES (100, 'x')" in texts
        assert "SELECT COUNT(*) FROM T" in texts

    def test_script_params_span_statements(self, obs):
        db = self._db(obs)
        results = db.execute_script(
            "INSERT INTO T VALUES (?, ?); SELECT V FROM T WHERE K = ?",
            (200, "s", 200),
        )
        assert results[-1].rows == [("s",)]
        logged = [e["sql"] for e in obs.slow_query.entries()]
        assert "SELECT V FROM T WHERE K = ?" in logged

    def test_explain_analyze_reports_step_timings(self):
        db = self._db()
        result = db.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM T WHERE K >= 0")
        lines = [row[0] for row in result.rows]
        assert any("ms cumulative" in line for line in lines)
        assert any("rows=" in line for line in lines)
        assert lines[-1].startswith("total: 1 row(s) in ")

    def test_plain_explain_unchanged(self):
        db = self._db()
        result = db.execute("EXPLAIN SELECT * FROM T")
        assert all("ms" not in row[0] for row in result.rows)

    def test_disabled_obs_records_nothing(self):
        null = get_observability()
        assert not null.enabled
        db = self._db()
        db.execute("SELECT * FROM T")
        assert null.tracer.snapshot() == []
        assert null.slow_query.entries() == []


class TestNetsimSimClockSpans:
    def test_transfer_span_uses_simulated_seconds(self, obs):
        from repro.netsim import MBYTE, SimClock, TransferEngine
        from repro.netsim.bandwidth import BandwidthProfile
        from repro.netsim.topology import Host, Link, Network

        network = Network()
        network.add_host(Host("db1"))
        network.add_host(Host("fs1"))
        network.add_link(Link("db1", "fs1", BandwidthProfile.constant(1.0)))
        engine = TransferEngine(network, SimClock())
        record = engine.transfer("db1", "fs1", 10 * MBYTE)
        span = obs.tracer.snapshot()[-1]
        assert span["name"] == "netsim.transfer"
        assert span["attributes"]["clock"] == "sim"
        # 10 MB at 1 Mbit/s = 80 simulated seconds, not wall time
        assert span["duration"] == pytest.approx(record.seconds)
        assert span["duration"] > 10.0
        assert obs.metrics.counter("netsim.wan_bytes").value == 10 * MBYTE


class TestReportingEmitter:
    def test_emitter_mirrors_into_event_log(self, obs):
        from repro.bench import reporting

        collected = []
        previous = reporting.set_emitter(reporting.Emitter(collected.append))
        try:
            reporting.emit("hello")
            assert collected == ["hello"]
            events = obs.events.events("bench.emit")
            assert events and events[0]["text"] == "hello"
        finally:
            reporting.set_emitter(previous)

    def test_set_writer_shim(self):
        from repro.bench import reporting

        collected = []
        previous = reporting.get_emitter()
        try:
            reporting.set_writer(collected.append)
            reporting.emit("via shim")
            assert collected == ["via shim"]
        finally:
            reporting.set_emitter(previous)


@pytest.fixture(scope="module")
def portal():
    from repro import EasiaApp, build_turbulence_archive

    import tempfile

    archive = build_turbulence_archive(n_simulations=2, timesteps=2, grid=8)
    engine = archive.make_engine(tempfile.mkdtemp(prefix="obs-test-sb-"))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    return app, archive


class TestWebEndpoints:
    def test_metrics_and_trace_live_after_qbe(self, portal, obs):
        app, archive = portal
        session = app.login("guest", "guest")
        response = app.get(
            "/search",
            {"table": "SIMULATION", "show_SIMULATION_KEY": "on",
             "show_TITLE": "on"},
            session_id=session,
        )
        assert response.status == 200

        metrics = app.get("/metrics", session_id=session)
        assert metrics.status == 200
        assert metrics.content_type == "text/plain"
        text = metrics.body.decode()
        assert "http.requests{path=/search,status=200} 1" in text
        assert "sql.statements" in text
        assert "sql.statement_cache.hit_ratio" in text
        assert "datalink.tokens_issued.total" in text

        trace = app.get("/trace", session_id=session)
        assert trace.status == 200
        assert "http.request" in trace.text
        assert "sql.statement" in trace.text
        # the SQL span nests under the HTTP request span
        spans = obs.tracer.snapshot()
        search = [
            s for s in spans
            if s["name"] == "http.request"
            and s["attributes"].get("path") == "/search"
        ][0]
        children = [s for s in spans if s["parent_id"] == search["span_id"]]
        assert any(s["name"] == "sql.statement" for s in children)

    def test_endpoints_require_login(self, portal):
        app, _ = portal
        assert app.get("/metrics").status in (302, 401, 403)
        assert app.get("/trace").status in (302, 401, 403)

    def test_trace_disabled_message(self, portal):
        app, _ = portal
        session = app.login("guest", "guest")
        assert not get_observability().enabled
        trace = app.get("/trace", session_id=session)
        assert "no spans recorded" in trace.text

    def test_metrics_works_without_obs_enabled(self, portal):
        app, _ = portal
        session = app.login("guest", "guest")
        metrics = app.get("/metrics", session_id=session)
        assert metrics.status == 200
        assert "sql.statement_cache.entries" in metrics.body.decode()
