"""Tests for XUIS-declared operation chains (extended DTD, paper future work)."""

import json

import pytest

from repro.errors import AuthorizationError, XuisError
from repro.turbulence import build_turbulence_archive
from repro.xuis import (
    Customizer,
    OperationSpec,
    parse_xuis,
    serialize_xuis,
    validate_xuis,
)

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


@pytest.fixture(scope="module")
def archive():
    base = build_turbulence_archive(n_simulations=1, timesteps=1, grid=12)
    chain = OperationSpec(
        "ReduceThenStats",
        guest_access=False,
        conditions=list(
            base.document.column(COLID).operations[0].conditions
        ),
        chain=["Subsample", "FieldStats"],
        description="Subsample the dataset, then compute field statistics",
    )
    base.document = Customizer(base.document).attach_operation(
        COLID, chain
    ).document
    return base


class TestChainMarkup:
    def test_round_trip(self, archive):
        text = serialize_xuis(archive.document)
        assert '<chain>' in text
        assert '<step name="Subsample" />' in text
        again = parse_xuis(text)
        ops = {op.name: op for op in again.column(COLID).operations}
        assert ops["ReduceThenStats"].chain == ["Subsample", "FieldStats"]
        assert ops["ReduceThenStats"].is_chain

    def test_valid_document(self, archive):
        assert validate_xuis(archive.document, archive.db) == []

    def test_unknown_step_rejected(self, archive):
        doc = Customizer(archive.document).attach_operation(
            COLID,
            OperationSpec("BadChain", chain=["NoSuchStep"]),
        ).document
        problems = validate_xuis(doc)
        assert any("NoSuchStep" in p for p in problems)

    def test_self_reference_rejected(self, archive):
        doc = Customizer(archive.document).attach_operation(
            COLID,
            OperationSpec("Loop", chain=["Loop"]),
        ).document
        problems = validate_xuis(doc)
        assert any("references itself" in p for p in problems)

    def test_chain_with_location_rejected(self, archive):
        from repro.xuis import UrlLocation

        doc = Customizer(archive.document).attach_operation(
            COLID,
            OperationSpec("Both", chain=["FieldStats"],
                          location=UrlLocation("http://x/y")),
        ).document
        problems = validate_xuis(doc)
        assert any("must not also have" in p for p in problems)


class TestChainExecution:
    def test_chain_runs_end_to_end(self, archive, tmp_path):
        engine = archive.make_engine(str(tmp_path / "sb"))
        row = archive.result_rows()[0]
        user = archive.users.user("turbulence")
        result = engine.invoke("ReduceThenStats", COLID, row, user=user)
        stats = json.loads(result.outputs["stats.json"])
        assert stats["grid"] == [6, 6, 6]  # subsampled from 12^3

    def test_chain_accounts_original_dataset(self, archive, tmp_path):
        engine = archive.make_engine(str(tmp_path / "sb2"))
        row = archive.result_rows()[0]
        user = archive.users.user("turbulence")
        result = engine.invoke("ReduceThenStats", COLID, row, user=user)
        assert result.dataset_bytes == row["RESULT_FILE.FILE_SIZE"]
        assert result.operation.name == "ReduceThenStats"

    def test_guest_blocked_by_restricted_step(self, archive, tmp_path):
        """The chain includes Subsample, which guests may not run — the
        whole chain is refused before any step executes."""
        engine = archive.make_engine(str(tmp_path / "sb3"))
        row = archive.result_rows()[0]
        guest = archive.users.user("guest")
        with pytest.raises(AuthorizationError):
            engine.invoke("ReduceThenStats", COLID, row, user=guest)
