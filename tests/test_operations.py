"""Tests for the operations framework: sandbox, batch, engine, upload,
cache, stats, URL services."""

import pytest

from repro.errors import (
    AuthorizationError,
    OperationError,
    OperationExecutionError,
    OperationNotApplicable,
    SandboxViolation,
)
from repro.operations import (
    BatchScript,
    OperationCache,
    OperationStats,
    Sandbox,
    SandboxPolicy,
    pack_code_archive,
    unpack_archive,
)
from repro.turbulence import build_turbulence_archive, decode_snapshot


@pytest.fixture(scope="module")
def archive():
    return build_turbulence_archive(n_simulations=2, timesteps=2, grid=10)


@pytest.fixture
def engine(archive, tmp_path):
    return archive.make_engine(str(tmp_path / "sandbox"))


@pytest.fixture
def row(archive):
    return archive.result_rows()[0]


COLID = "RESULT_FILE.DOWNLOAD_RESULT"


class TestSandbox:
    def test_basic_run_collects_outputs(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"12345")
        result = sandbox.run_source(
            "data = open(INPUT_FILENAME, 'rb').read()\n"
            "out = open('len.txt', 'w')\n"
            "out.write(str(len(data)))\n"
            "out.close()\n",
            workdir,
            "in.dat",
        )
        assert result.outputs == {"len.txt": b"5"}

    def test_print_captured(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        result = sandbox.run_source("print('hello', 42)", workdir, "in.dat")
        assert result.stdout == "hello 42\n"

    def test_params_visible(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        result = sandbox.run_source(
            "out = open('p.txt', 'w')\nout.write(str(PARAMS['k']))\nout.close()",
            workdir, "in.dat", {"k": "v"},
        )
        assert result.outputs["p.txt"] == b"v"

    def test_absolute_path_blocked(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        with pytest.raises(SandboxViolation):
            sandbox.run_source(
                "open('/etc/passwd', 'r')", workdir, "in.dat"
            )

    def test_escape_via_dotdot_blocked(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        with pytest.raises(SandboxViolation):
            sandbox.run_source(
                "open('../outside.txt', 'w')", workdir, "in.dat"
            )

    def test_disallowed_import_blocked(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        with pytest.raises(SandboxViolation):
            sandbox.run_source("import os", workdir, "in.dat")

    def test_allowed_import_works(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        result = sandbox.run_source(
            "import math\nprint(math.sqrt(9))", workdir, "in.dat"
        )
        assert "3.0" in result.stdout

    def test_step_budget_enforced(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        policy = SandboxPolicy(max_steps=1000)
        with pytest.raises(SandboxViolation):
            sandbox.run_source(
                "x = 0\nwhile True:\n    x += 1\n", workdir, "in.dat",
                policy=policy,
            )

    def test_exec_and_dunder_import_unavailable(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        with pytest.raises(OperationExecutionError):
            sandbox.run_source("exec('1+1')", workdir, "in.dat")

    def test_crash_becomes_operation_error(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        with pytest.raises(OperationExecutionError):
            sandbox.run_source("1 / 0", workdir, "in.dat")

    def test_syntax_error(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with pytest.raises(OperationExecutionError):
            sandbox.run_source("def broken(:", workdir, "in.dat")

    def test_workdirs_unique_and_session_named(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        a = sandbox.make_workdir("sess-1")
        b = sandbox.make_workdir("sess-1")
        assert a != b
        assert "sess-1" in a

    def test_output_size_limit(self, tmp_path):
        sandbox = Sandbox(str(tmp_path))
        workdir = sandbox.make_workdir("sess")
        with open(f"{workdir}/in.dat", "wb") as fh:
            fh.write(b"")
        policy = SandboxPolicy(max_output_bytes=10)
        with pytest.raises(SandboxViolation):
            sandbox.run_source(
                "out = open('big.bin', 'wb')\nout.write(bytes(100))\nout.close()",
                workdir, "in.dat", policy=policy,
            )


class TestBatch:
    def test_zip_round_trip(self, tmp_path):
        archive_bytes = pack_code_archive({"a.py": b"x = 1", "d/b.txt": b"hi"})
        members = unpack_archive(archive_bytes, str(tmp_path))
        assert sorted(members) == ["a.py", "d/b.txt"]
        assert (tmp_path / "d" / "b.txt").read_bytes() == b"hi"

    @pytest.mark.parametrize("fmt", ["zip", "jar", "tar", "tar.gz", "tgz"])
    def test_all_formats(self, tmp_path, fmt):
        archive_bytes = pack_code_archive({"m.py": b"pass"}, fmt)
        members = unpack_archive(archive_bytes, str(tmp_path / fmt))
        assert members == ["m.py"]

    def test_unknown_format(self):
        with pytest.raises(OperationExecutionError):
            pack_code_archive({}, "rar")

    def test_garbage_archive(self, tmp_path):
        with pytest.raises(OperationExecutionError):
            unpack_archive(b"not an archive", str(tmp_path))

    def test_script_render(self):
        script = BatchScript("/tmp/w", "GetImage.jar", "GetImage.py", "ts.turb")
        text = script.render()
        assert "cd /tmp/w" in text
        assert "unpack GetImage.jar" in text
        assert "interpreter GetImage.py ts.turb" in text
        assert script.steps()[0] == "cd /tmp/w"


class TestEngine:
    def test_get_image_produces_pgm(self, engine, row):
        result = engine.invoke(
            "GetImage", COLID, row, {"slice": "x1", "type": "u"}
        )
        pgm = result.outputs["slice.pgm"]
        assert pgm.startswith(b"P5\n10 10\n255\n")
        assert len(pgm) == len(b"P5\n10 10\n255\n") + 100

    def test_components_differ(self, engine, row):
        u = engine.invoke("GetImage", COLID, row, {"slice": "x1", "type": "u"})
        p = engine.invoke("GetImage", COLID, row, {"slice": "x1", "type": "p"})
        assert u.outputs["slice.pgm"] != p.outputs["slice.pgm"]

    def test_field_stats(self, engine, row):
        import json

        result = engine.invoke("FieldStats", COLID, row)
        stats = json.loads(result.outputs["stats.json"])
        assert stats["grid"] == [10, 10, 10]
        assert set(stats["fields"]) == {"u", "v", "w", "p"}
        for field in stats["fields"].values():
            assert field["min"] <= field["mean"] <= field["max"]
            assert field["rms"] >= 0

    def test_stats_match_numpy(self, engine, archive, row):
        import json

        import numpy as np

        server = archive.linker.server(row[COLID].host)
        data = server.filesystem.read(row[COLID].server_path)
        fields = decode_snapshot(data)
        result = engine.invoke("FieldStats", COLID, row, use_cache=False)
        stats = json.loads(result.outputs["stats.json"])
        assert stats["fields"]["u"]["mean"] == pytest.approx(
            float(np.mean(fields["u"])), rel=1e-5
        )
        assert stats["fields"]["p"]["rms"] == pytest.approx(
            float(np.sqrt(np.mean(fields["p"] ** 2))), rel=1e-5
        )

    def test_subsample_halves_grid(self, engine, archive, row):
        user = archive.users.user("turbulence")
        result = engine.invoke("Subsample", COLID, row, {"factor": "2"}, user=user)
        fields = decode_snapshot(result.outputs["subsampled.turb"])
        assert fields["u"].shape == (5, 5, 5)

    def test_subsample_values_correct(self, engine, archive, row):
        import numpy as np

        user = archive.users.user("turbulence")
        server = archive.linker.server(row[COLID].host)
        original = decode_snapshot(server.filesystem.read(row[COLID].server_path))
        result = engine.invoke("Subsample", COLID, row, {"factor": "2"}, user=user)
        reduced = decode_snapshot(result.outputs["subsampled.turb"])
        np.testing.assert_array_equal(reduced["w"], original["w"][::2, ::2, ::2])

    def test_data_reduction_accounting(self, engine, row):
        result = engine.invoke(
            "GetImage", COLID, row, {"slice": "x0", "type": "u"},
            use_cache=False,
        )
        assert result.dataset_bytes == row["RESULT_FILE.FILE_SIZE"]
        assert result.output_bytes < result.dataset_bytes
        assert result.reduction_factor > 10

    def test_guest_restrictions(self, engine, archive, row):
        guest = archive.users.user("guest")
        engine.invoke("GetImage", COLID, row, {"slice": "x0", "type": "u"}, user=guest)
        with pytest.raises(AuthorizationError):
            engine.invoke("Subsample", COLID, row, {"factor": "2"}, user=guest)

    def test_operations_for_filters_by_user(self, engine, archive, row):
        guest = archive.users.user("guest")
        full = archive.users.user("turbulence")
        guest_ops = {o.name for o in engine.operations_for(COLID, row, guest)}
        full_ops = {o.name for o in engine.operations_for(COLID, row, full)}
        assert "Subsample" not in guest_ops
        assert "Subsample" in full_ops

    def test_conditions_gate_applicability(self, engine, row):
        other = dict(row)
        other["RESULT_FILE.FILE_FORMAT"] = "HDF"
        other["FILE_FORMAT"] = "HDF"
        assert engine.operations_for(COLID, other) == []
        with pytest.raises(OperationNotApplicable):
            engine.invoke("GetImage", COLID, other, {"slice": "x0", "type": "u"})

    def test_unknown_operation(self, engine, row):
        with pytest.raises(OperationError):
            engine.invoke("NoSuchOp", COLID, row)

    def test_param_validation(self, engine, row):
        with pytest.raises(OperationError):
            engine.invoke("GetImage", COLID, row, {"slice": "x99", "type": "u"})
        with pytest.raises(OperationError):
            engine.invoke("GetImage", COLID, row, {"slice": "x0", "bogus": "1"})

    def test_param_defaults_applied(self, engine, row):
        result = engine.invoke("GetImage", COLID, row)
        assert "slice.pgm" in result.outputs

    def test_url_service(self, engine, row):
        result = engine.invoke("SDB", COLID, row)
        html = result.outputs["sdb.html"].decode()
        assert "Grid: 10 x 10 x 10" in html
        assert "consistent" in html

    def test_unregistered_url_service(self, archive, tmp_path, row):
        from repro.operations import OperationEngine

        bare = OperationEngine(
            archive.db, archive.linker, archive.document,
            str(tmp_path / "bare"),
        )
        with pytest.raises(OperationError):
            bare.invoke("SDB", COLID, row)

    def test_batch_script_attached(self, engine, row):
        result = engine.invoke(
            "GetImage", COLID, row, {"slice": "x0", "type": "v"},
            use_cache=False,
        )
        assert result.batch_script is not None
        assert "unpack GetImage.jar" in result.batch_script.render()

    def test_progress_stages_reported(self, engine, row):
        events = []
        engine.add_progress_listener(
            lambda op, stage, detail: events.append((op, stage))
        )
        engine.invoke(
            "GetImage", COLID, row, {"slice": "x2", "type": "w"},
            use_cache=False,
        )
        stages = [stage for _op, stage in events]
        assert stages == ["resolve", "fetch", "unpack", "execute", "collect"]

    def test_cache_hit(self, engine, row):
        first = engine.invoke("GetImage", COLID, row, {"slice": "x3", "type": "u"})
        second = engine.invoke("GetImage", COLID, row, {"slice": "x3", "type": "u"})
        assert not first.cached
        assert second.cached
        assert second.outputs == first.outputs

    def test_cache_distinguishes_params(self, engine, row):
        a = engine.invoke("GetImage", COLID, row, {"slice": "x4", "type": "u"})
        b = engine.invoke("GetImage", COLID, row, {"slice": "x5", "type": "u"})
        assert not b.cached
        assert a.outputs != b.outputs

    def test_stats_recorded(self, engine, row):
        engine.invoke("FieldStats", COLID, row, use_cache=False)
        summary = engine.stats.summary("FieldStats")
        assert summary is not None
        assert summary.invocations >= 1
        assert summary.total_output_bytes > 0
        assert "FieldStats" in engine.stats.report()

    def test_chaining(self, engine, archive, row):
        user = archive.users.user("turbulence")
        results = engine.invoke_chain(
            ["Subsample", "FieldStats"], COLID, row,
            [{"factor": "2"}, None], user=user,
        )
        import json

        stats = json.loads(results[1].outputs["stats.json"])
        assert stats["grid"] == [5, 5, 5]

    def test_invoke_multi(self, engine, archive):
        rows = archive.result_rows(archive.simulation_keys[0])
        results = engine.invoke_multi(
            "FieldStats", COLID, rows, session_tag="multi-test"
        )
        assert len(results) == len(rows)
        assert all("stats.json" in r.outputs for r in results)


class TestCodeUpload:
    def make_code(self):
        return pack_code_archive({
            "MyCount.py": (
                b"data = open(INPUT_FILENAME, 'rb').read()\n"
                b"out = open('count.txt', 'w')\n"
                b"out.write(str(len(data)))\n"
                b"out.close()\n"
            )
        })

    def test_upload_runs(self, engine, archive, row):
        from repro.operations import CodeUploader

        uploader = CodeUploader(engine)
        user = archive.users.user("turbulence")
        result = uploader.run_upload(
            COLID, row, self.make_code(), "MyCount", user=user
        )
        assert result.outputs["count.txt"] == str(
            row["RESULT_FILE.FILE_SIZE"]
        ).encode()

    def test_guest_upload_denied(self, engine, archive, row):
        from repro.operations import CodeUploader

        uploader = CodeUploader(engine)
        guest = archive.users.user("guest")
        with pytest.raises(AuthorizationError):
            uploader.run_upload(COLID, row, self.make_code(), "MyCount", user=guest)

    def test_upload_conditions_enforced(self, engine, archive, row):
        from repro.operations import CodeUploader

        uploader = CodeUploader(engine)
        user = archive.users.user("turbulence")
        other = dict(row)
        other["RESULT_FILE.MEASUREMENT"] = "u only"
        other["MEASUREMENT"] = "u only"
        with pytest.raises(OperationNotApplicable):
            uploader.run_upload(COLID, other, self.make_code(), "MyCount", user=user)

    def test_upload_sandboxed(self, engine, archive, row):
        from repro.operations import CodeUploader

        uploader = CodeUploader(engine)
        user = archive.users.user("turbulence")
        evil = pack_code_archive({"Evil.py": b"import os\nos.remove('x')\n"})
        with pytest.raises(SandboxViolation):
            uploader.run_upload(COLID, row, evil, "Evil", user=user)

    def test_upload_missing_entry(self, engine, archive, row):
        from repro.operations import CodeUploader

        uploader = CodeUploader(engine)
        user = archive.users.user("turbulence")
        with pytest.raises(OperationError):
            uploader.run_upload(
                COLID, row, pack_code_archive({"other.txt": b"x"}),
                "MyCount", user=user,
            )

    def test_upload_stats_recorded(self, engine, archive, row):
        from repro.operations import CodeUploader

        uploader = CodeUploader(engine)
        user = archive.users.user("turbulence")
        uploader.run_upload(COLID, row, self.make_code(), "MyCount", user=user)
        assert engine.stats.summary("upload:MyCount").invocations >= 1


class TestCacheUnit:
    def make_result(self, payload=b"x" * 10):
        class FakeResult:
            outputs = {"out.bin": payload}
            stdout = ""
            dataset_bytes = 100

        return FakeResult()

    def test_put_get(self):
        cache = OperationCache()
        key = cache.key("Op", "http://h/f", {"a": "1"})
        assert cache.get(key) is None
        cache.put(key, self.make_result())
        assert cache.get(key).outputs == {"out.bin": b"x" * 10}
        assert cache.hits == 1 and cache.misses == 1

    def test_entry_eviction(self):
        cache = OperationCache(max_entries=2)
        for i in range(3):
            cache.put(cache.key("Op", f"u{i}", {}), self.make_result())
        assert len(cache) == 2
        assert cache.get(cache.key("Op", "u0", {})) is None

    def test_byte_eviction(self):
        cache = OperationCache(max_bytes=25)
        for i in range(3):
            cache.put(cache.key("Op", f"u{i}", {}), self.make_result())
        assert cache.stored_bytes <= 25

    def test_oversized_entry_not_stored(self):
        cache = OperationCache(max_bytes=5)
        cache.put(cache.key("Op", "u", {}), self.make_result(b"x" * 100))
        assert len(cache) == 0

    def test_invalidate_dataset(self):
        cache = OperationCache()
        cache.put(cache.key("A", "url1", {}), self.make_result())
        cache.put(cache.key("B", "url1", {}), self.make_result())
        cache.put(cache.key("A", "url2", {}), self.make_result())
        assert cache.invalidate_dataset("url1") == 2
        assert len(cache) == 1

    def test_lru_order(self):
        cache = OperationCache(max_entries=2)
        k1 = cache.key("Op", "u1", {})
        k2 = cache.key("Op", "u2", {})
        cache.put(k1, self.make_result())
        cache.put(k2, self.make_result())
        cache.get(k1)  # refresh k1
        cache.put(cache.key("Op", "u3", {}), self.make_result())
        assert cache.get(k1) is not None
        assert cache.get(k2) is None


class TestStatsUnit:
    def test_aggregation(self):
        stats = OperationStats()
        stats.record("Op", 0.5, 1000, 10)
        stats.record("Op", 1.5, 1000, 30)
        summary = stats.summary("Op")
        assert summary.invocations == 2
        assert summary.mean_elapsed == 1.0
        assert summary.min_elapsed == 0.5
        assert summary.max_elapsed == 1.5
        assert summary.mean_output_bytes == 20
        assert summary.mean_reduction_factor == 50

    def test_cache_hits_tracked(self):
        stats = OperationStats()
        stats.record_cache_hit("Op")
        assert stats.summary("Op").cache_hits == 1

    def test_report_lists_all(self):
        stats = OperationStats()
        stats.record("B", 1, 10, 1)
        stats.record("A", 1, 10, 1)
        report = stats.report()
        assert report.index("A:") < report.index("B:")
