"""The paper's headline claims, verified in one place.

The benchmark harness regenerates every table/figure with timing; this
module is the claims *ledger* for plain ``pytest tests/`` runs — each test
re-verifies one quantitative or behavioural claim end to end, fast.
"""

import pytest

from repro.netsim import MBYTE, PAPER_RATES, format_duration, transfer_seconds
from repro.turbulence import build_turbulence_archive

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


@pytest.fixture(scope="module")
def archive():
    return build_turbulence_archive(n_simulations=2, timesteps=2, grid=12)


@pytest.fixture(scope="module")
def engine(archive, tmp_path_factory):
    return archive.make_engine(str(tmp_path_factory.mktemp("claims")))


class TestTable1Claim:
    """Claim: the measured transfer times make central archiving
    infeasible (Table 1)."""

    PAPER = {
        ("day", "to_southampton"): ("45m20s", "4h50m08s"),
        ("day", "from_southampton"): ("30m38s", "3h16m02s"),
        ("evening", "to_southampton"): ("19m32s", "2h05m03s"),
        ("evening", "from_southampton"): ("5m51s", "37m23s"),
    }

    def test_all_eight_cells(self):
        for key, (small, large) in self.PAPER.items():
            rate = PAPER_RATES[key]
            assert format_duration(transfer_seconds(85 * MBYTE, rate)) == small
            assert format_duration(transfer_seconds(544 * MBYTE, rate)) == large


class TestUnifiedStorageClaim:
    """Claim: the database stores small metadata and huge files in a
    unified way, keeping security, recovery and integrity."""

    def test_metadata_and_files_in_one_query_surface(self, archive):
        row = archive.db.execute(
            "SELECT TITLE, FILE_SIZE, DOWNLOAD_RESULT "
            "FROM SIMULATION s JOIN RESULT_FILE r "
            "ON s.SIMULATION_KEY = r.SIMULATION_KEY LIMIT 1"
        ).first()
        title, size, link = row
        assert isinstance(title, str)
        assert link.size == size
        assert link.token is not None  # security via READ PERMISSION DB

    def test_referential_integrity_covers_files(self, archive):
        from repro.errors import FileLockedError

        value = archive.result_rows()[0][COLID]
        server = archive.linker.server(value.host)
        with pytest.raises(FileLockedError):
            server.filesystem.delete(value.server_path)


class TestDataReductionClaim:
    """Claim: user-directed post-processing significantly reduces the data
    shipped back to the user."""

    def test_slicing_is_orders_of_magnitude_smaller(self, archive, engine):
        row = archive.result_rows()[0]
        result = engine.invoke(
            "GetImage", COLID, row, {"slice": "x1", "type": "u"}
        )
        assert result.reduction_factor > 100

    def test_dataset_never_crosses_network(self, archive, engine):
        served_before = [s.bytes_served for s in archive.servers]
        engine.invoke("FieldStats", COLID, archive.result_rows()[0],
                      use_cache=False)
        assert [s.bytes_served for s in archive.servers] == served_before


class TestDistributionClaim:
    """Claim: archiving where generated avoids the upload problem; many
    machines serve as file servers for a single database."""

    def test_local_archival_is_free(self):
        from repro.netsim import Network, SimClock, TransferEngine

        engine = TransferEngine(
            Network.paper_topology(), SimClock(start_hour=10.0)
        )
        record = engine.transfer("qmw.london", "qmw.london", 544 * MBYTE)
        assert record.seconds == 0.0 and record.wide_area_bytes == 0

    def test_many_servers_one_database(self, archive):
        hosts = {
            row[COLID].host for row in archive.result_rows()
        }
        assert len(hosts) == 2  # datasets genuinely spread
        # ...yet one database answers for all of them
        assert archive.db.execute(
            "SELECT COUNT(*) FROM RESULT_FILE"
        ).scalar() == len(archive.result_rows())


class TestSchemaDrivenClaim:
    """Claim: the interface is generated from the schema and usable
    without database or web expertise."""

    def test_default_interface_from_catalog_alone(self, archive):
        from repro.xuis import generate_default_xuis, validate_xuis

        document = generate_default_xuis(archive.db)
        assert validate_xuis(document, archive.db) == []
        assert {t.name for t in document.tables} >= {
            "AUTHOR", "SIMULATION", "RESULT_FILE",
            "CODE_FILE", "VISUALISATION_FILE",
        }

    def test_browsing_follows_referential_integrity(self, archive):
        document = archive.document
        # FK browsing from SIMULATION to AUTHOR
        assert document.column("SIMULATION.AUTHOR_KEY").fk is not None
        # PK browsing from SIMULATION into its three file tables
        refby = set(document.column("SIMULATION.SIMULATION_KEY").pk.refby)
        assert refby == {
            "RESULT_FILE.SIMULATION_KEY",
            "CODE_FILE.SIMULATION_KEY",
            "VISUALISATION_FILE.SIMULATION_KEY",
        }


class TestGuestRestrictionClaims:
    """Claim: guest users cannot download datasets, cannot upload codes,
    and are limited in the operations they can run."""

    def test_all_three_restrictions(self, archive, engine):
        from repro.errors import AuthorizationError
        from repro.operations import CodeUploader, pack_code_archive

        guest = archive.users.user("guest")
        row = archive.result_rows()[0]
        assert not guest.can_download
        with pytest.raises(AuthorizationError):
            CodeUploader(engine).run_upload(
                COLID, row, pack_code_archive({"X.py": b"pass"}), "X",
                user=guest,
            )
        names = {o.name for o in engine.operations_for(COLID, row, guest)}
        assert "Subsample" not in names          # restricted
        assert "GetImage" in names               # guest.access="true"
