"""Fuzz and round-trip properties for the SQL parser."""

import string

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.sqldb import Database
from repro.sqldb.parser import parse_sql, tokenize
from repro.sqldb.schema import Column, ForeignKey, TableSchema
from repro.sqldb.types import type_from_name

_SQLISH = st.text(
    alphabet=string.ascii_letters + string.digits + " '\"(),.*=<>!;%_-+/\n",
    max_size=80,
)

_KEYWORD_SOUP = st.lists(
    st.sampled_from([
        "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "CREATE",
        "TABLE", "DATALINK", "PRIMARY", "KEY", "JOIN", "ON", "GROUP", "BY",
        "ORDER", "LIMIT", "UNION", "CASE", "WHEN", "THEN", "END", "EXISTS",
        "NOT", "NULL", "LIKE", "IN", "BETWEEN", "AND", "OR", "(", ")", ",",
        "*", "=", "?", "'x'", "42", "t", "a", "b",
    ]),
    max_size=15,
).map(" ".join)


class TestParserRobustness:
    @given(text=_SQLISH)
    @settings(max_examples=400)
    @example("SELECT")
    @example("CREATE TABLE t (")
    @example("INSERT INTO t VALUES ('")
    @example("SELECT * FROM t WHERE")
    @example("''")
    def test_arbitrary_text_never_crashes(self, text):
        """Any input either parses or raises a library error — nothing
        else (no IndexError, RecursionError on this size, etc.)."""
        try:
            parse_sql(text)
        except ReproError:
            pass

    @given(text=_KEYWORD_SOUP)
    @settings(max_examples=400)
    def test_keyword_soup_never_crashes(self, text):
        try:
            parse_sql(text)
        except ReproError:
            pass

    @given(text=_SQLISH)
    @settings(max_examples=200)
    def test_lexer_never_crashes(self, text):
        try:
            tokens = tokenize(text)
            assert tokens[-1].kind == "EOF"
        except ReproError:
            pass

    @given(text=_KEYWORD_SOUP)
    @settings(max_examples=200)
    def test_execute_never_crashes_engine(self, text):
        """Even executing random statements must only raise library errors."""
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(5))")
        try:
            db.execute(text)
        except ReproError:
            pass


_COLUMN_TYPES = st.sampled_from([
    ("INTEGER", None), ("DOUBLE", None), ("BOOLEAN", None),
    ("VARCHAR", 17), ("CHAR", 4), ("DATE", None), ("TIMESTAMP", None),
    ("BLOB", None), ("CLOB", None),
])

_IDENT = st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=8)


class TestDdlRoundTrip:
    @given(
        table_name=_IDENT,
        columns=st.dictionaries(_IDENT, _COLUMN_TYPES, min_size=1, max_size=8),
    )
    @settings(max_examples=100)
    def test_schema_ddl_reparses_identically(self, table_name, columns):
        names = list(columns)
        schema = TableSchema(
            table_name,
            [
                Column(name, type_from_name(kind, size))
                for name, (kind, size) in columns.items()
            ],
            primary_key=(names[0],),
        )
        ddl = schema.ddl()
        stmt = parse_sql(ddl)
        assert stmt.name == schema.name
        assert stmt.primary_key == schema.primary_key
        assert [c.name for c in stmt.columns] == [c.name for c in schema.columns]
        for parsed, original in zip(stmt.columns, schema.columns):
            assert parsed.type == original.type
            assert parsed.nullable == original.nullable

    def test_turbulence_schema_ddl_round_trip(self):
        """The real five-table schema's dumped DDL rebuilds an equivalent
        database (this is what checkpoint recovery relies on)."""
        from repro.turbulence import create_turbulence_schema

        db = Database()
        create_turbulence_schema(db)
        script = db.catalog.ddl_script()

        db2 = Database()
        db2.execute_script(script)
        assert db2.table_names() == db.table_names()
        for name in db.table_names():
            original = db.catalog.schema(name)
            rebuilt = db2.catalog.schema(name)
            assert rebuilt.primary_key == original.primary_key
            assert [c.ddl() for c in rebuilt.columns] == [
                c.ddl() for c in original.columns
            ]
            assert [fk.ddl() for fk in rebuilt.foreign_keys] == [
                fk.ddl() for fk in original.foreign_keys
            ]
