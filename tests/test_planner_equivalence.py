"""Differential testing of the cost-aware planner.

Every query below runs twice — once with the planner on (predicate
pushdown, hash joins, range scans, top-N) and once through the naive
nested-loop / filter-at-the-end path (``pushdown=False``) — and must
produce the identical result multiset.  The corpus is generated over a
NULL-heavy schema and covers joins (INNER/LEFT/cross), range predicates,
DISTINCT, ORDER BY/LIMIT/OFFSET, grouping and subqueries.
"""

from __future__ import annotations

import pytest

from repro.sqldb.database import Database


def _make_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE SIM ("
        " SIM_KEY INTEGER PRIMARY KEY,"
        " TITLE VARCHAR(30),"
        " GRID INTEGER,"
        " RE DOUBLE,"
        " AUTHOR VARCHAR(20))"
    )
    db.execute(
        "CREATE TABLE FILES ("
        " FILE_NAME VARCHAR(30) PRIMARY KEY,"
        " SIM_KEY INTEGER,"
        " SIZE_MB INTEGER,"
        " KIND VARCHAR(10))"
    )
    db.execute("CREATE INDEX IX_GRID ON SIM (GRID)")
    db.execute("CREATE INDEX IX_SIZE ON FILES (SIZE_MB)")

    grids = [64, 128, 256, 512, None]
    authors = ["papiani", "wakelin", None, "nicole"]
    for i in range(60):
        db.execute(
            "INSERT INTO SIM VALUES (?, ?, ?, ?, ?)",
            (
                i,
                f"run {i:03d}" if i % 7 else None,
                grids[i % len(grids)],
                None if i % 11 == 0 else 100.0 + i,
                authors[i % len(authors)],
            ),
        )
    for i in range(90):
        db.execute(
            "INSERT INTO FILES VALUES (?, ?, ?, ?)",
            (
                f"f{i:04d}.dat",
                None if i % 13 == 0 else i % 60,
                None if i % 9 == 0 else (i * 3) % 500,
                ["raw", "plot", "mesh"][i % 3],
            ),
        )
    # orphan files pointing at no simulation (LEFT JOIN fodder)
    db.execute("INSERT INTO FILES VALUES ('orphan.dat', 999, 42, 'raw')")
    return db


@pytest.fixture(scope="module")
def db() -> Database:
    return _make_db()


def _generated_queries() -> list[tuple[str, tuple]]:
    queries: list[tuple[str, tuple]] = []

    # single-table range/equality/LIKE shapes over indexed + plain columns
    for predicate, params in [
        ("GRID > ?", (100,)),
        ("GRID >= ?", (128,)),
        ("GRID < ?", (256,)),
        ("GRID <= ?", (128,)),
        ("GRID BETWEEN ? AND ?", (100, 300)),
        ("GRID = ?", (128,)),
        ("? < GRID", (200,)),
        ("RE > ?", (120.0,)),
        ("AUTHOR LIKE 'pa%'", ()),
        ("AUTHOR LIKE '%lin'", ()),
        ("TITLE LIKE 'run 0%'", ()),
        ("AUTHOR IS NULL", ()),
        ("GRID IS NOT NULL AND GRID > ?", (64,)),
        ("GRID > ? AND GRID < ?", (64, 512)),
        ("GRID > ? OR AUTHOR = ?", (256, "papiani")),
        ("NOT GRID > ?", (128,)),
    ]:
        queries.append((f"SELECT * FROM SIM WHERE {predicate}", params))

    # projections, DISTINCT, ORDER BY / LIMIT / OFFSET
    queries += [
        ("SELECT DISTINCT AUTHOR FROM SIM", ()),
        ("SELECT DISTINCT GRID, AUTHOR FROM SIM", ()),
        ("SELECT DISTINCT KIND FROM FILES WHERE SIZE_MB > ?", (50,)),
        ("SELECT SIM_KEY FROM SIM ORDER BY SIM_KEY DESC LIMIT 10", ()),
        ("SELECT SIM_KEY, GRID FROM SIM ORDER BY GRID DESC, SIM_KEY LIMIT 7", ()),
        ("SELECT SIM_KEY FROM SIM ORDER BY RE LIMIT 5 OFFSET 5", ()),
        ("SELECT SIM_KEY FROM SIM ORDER BY AUTHOR DESC, SIM_KEY LIMIT 12", ()),
        ("SELECT SIM_KEY FROM SIM LIMIT 9", ()),
        ("SELECT SIM_KEY FROM SIM ORDER BY SIM_KEY OFFSET 55", ()),
        ("SELECT DISTINCT GRID FROM SIM ORDER BY GRID LIMIT 3", ()),
    ]

    # joins: indexed, unindexed equi (hash), LEFT, cross, multi-conjunct
    join_shapes = [
        "SELECT S.SIM_KEY, F.FILE_NAME FROM SIM AS S JOIN FILES AS F "
        "ON S.SIM_KEY = F.SIM_KEY",
        "SELECT S.SIM_KEY, F.FILE_NAME FROM FILES AS F JOIN SIM AS S "
        "ON F.SIM_KEY = S.SIM_KEY",
        "SELECT F.FILE_NAME, S.AUTHOR FROM FILES AS F LEFT JOIN SIM AS S "
        "ON F.SIM_KEY = S.SIM_KEY",
        "SELECT S.SIM_KEY, F.FILE_NAME FROM SIM AS S JOIN FILES AS F "
        "ON S.GRID = F.SIZE_MB",
        "SELECT S.SIM_KEY, F.FILE_NAME FROM SIM AS S LEFT JOIN FILES AS F "
        "ON S.GRID = F.SIZE_MB",
        "SELECT S.SIM_KEY, F.FILE_NAME FROM SIM AS S JOIN FILES AS F "
        "ON S.SIM_KEY = F.SIM_KEY AND S.GRID < F.SIZE_MB",
    ]
    for shape in join_shapes:
        queries.append((shape, ()))
        queries.append((shape + " WHERE S.GRID > ?", (100,)))
    queries += [
        (
            "SELECT S.SIM_KEY, F.FILE_NAME FROM SIM AS S JOIN FILES AS F "
            "ON S.SIM_KEY = F.SIM_KEY "
            "WHERE S.AUTHOR = ? AND F.KIND = ? AND F.SIZE_MB > ?",
            ("papiani", "raw", 10),
        ),
        (
            "SELECT F.FILE_NAME, S.TITLE FROM FILES AS F LEFT JOIN SIM AS S "
            "ON F.SIM_KEY = S.SIM_KEY WHERE F.SIZE_MB BETWEEN ? AND ?",
            (10, 400),
        ),
        (
            "SELECT A.SIM_KEY, B.SIM_KEY FROM SIM AS A, SIM AS B "
            "WHERE A.GRID = B.GRID AND A.SIM_KEY < B.SIM_KEY AND A.GRID > ?",
            (128,),
        ),
        (
            "SELECT S.SIM_KEY, F.FILE_NAME FROM SIM AS S JOIN FILES AS F "
            "ON S.SIM_KEY = F.SIM_KEY ORDER BY F.FILE_NAME LIMIT 15",
            (),
        ),
        (
            "SELECT DISTINCT S.AUTHOR, F.KIND FROM SIM AS S JOIN FILES AS F "
            "ON S.SIM_KEY = F.SIM_KEY",
            (),
        ),
    ]

    # grouping and aggregates
    queries += [
        ("SELECT AUTHOR, COUNT(*) FROM SIM GROUP BY AUTHOR", ()),
        (
            "SELECT KIND, COUNT(*) AS N, MAX(SIZE_MB) FROM FILES "
            "GROUP BY KIND ORDER BY N DESC LIMIT 2",
            (),
        ),
        (
            "SELECT S.AUTHOR, COUNT(*) FROM SIM AS S JOIN FILES AS F "
            "ON S.SIM_KEY = F.SIM_KEY WHERE F.SIZE_MB > ? GROUP BY S.AUTHOR",
            (20,),
        ),
    ]

    # subqueries: IN / NOT IN / EXISTS / scalar
    queries += [
        (
            "SELECT SIM_KEY FROM SIM WHERE SIM_KEY IN "
            "(SELECT SIM_KEY FROM FILES WHERE KIND = ?)",
            ("raw",),
        ),
        (
            "SELECT SIM_KEY FROM SIM WHERE SIM_KEY NOT IN "
            "(SELECT SIM_KEY FROM FILES WHERE SIM_KEY IS NOT NULL)",
            (),
        ),
        (
            "SELECT SIM_KEY FROM SIM WHERE SIM_KEY NOT IN "
            "(SELECT SIM_KEY FROM FILES)",  # NULL-poisoned NOT IN
            (),
        ),
        (
            "SELECT FILE_NAME FROM FILES WHERE EXISTS "
            "(SELECT 1 FROM SIM WHERE GRID = ?)",
            (128,),
        ),
        (
            "SELECT SIM_KEY FROM SIM WHERE GRID = "
            "(SELECT MAX(GRID) FROM SIM)",
            (),
        ),
        (
            "SELECT SIM_KEY FROM SIM WHERE AUTHOR IN "
            "(SELECT AUTHOR FROM SIM WHERE GRID > ?) ORDER BY SIM_KEY LIMIT 20",
            (128,),
        ),
    ]
    return queries


QUERIES = _generated_queries()


def test_corpus_is_large_enough():
    assert len(QUERIES) >= 50


@pytest.mark.parametrize(
    "sql,params", QUERIES, ids=[f"q{i:02d}" for i in range(len(QUERIES))]
)
def test_planner_matches_naive_path(db, sql, params):
    optimized = db.execute(sql, params).rows
    naive = db.execute(sql, params, pushdown=False).rows
    if " ORDER BY " in sql:
        # ordered queries must agree on the exact sequence (modulo ties,
        # which both paths break identically via stable sorts)
        assert len(optimized) == len(naive)
        assert sorted(map(repr, optimized)) == sorted(map(repr, naive))
    else:
        assert sorted(map(repr, optimized)) == sorted(map(repr, naive))
