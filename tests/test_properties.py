"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalink import TokenManager
from repro.errors import TokenError, TokenExpiredError, UniqueViolation
from repro.netsim import BandwidthProfile, SimClock, transfer_seconds
from repro.sqldb import Database
from repro.sqldb.expressions import Like
from repro.sqldb.schema import Column, TableSchema
from repro.sqldb.storage import SortedIndex, Table
from repro.sqldb.types import DatalinkValue, IntegerType, VarcharType

# identifiers that are safe as SQL string literals and column values
_TEXT = st.text(
    alphabet=string.ascii_letters + string.digits + " _-",
    min_size=0,
    max_size=20,
)
_KEYS = st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=8)


class TestLikeProperty:
    @staticmethod
    def _oracle(value: str, pattern: str) -> bool:
        """Naive recursive LIKE matcher used as the specification."""

        def match(v: int, p: int) -> bool:
            if p == len(pattern):
                return v == len(value)
            ch = pattern[p]
            if ch == "%":
                return any(match(i, p + 1) for i in range(v, len(value) + 1))
            if v == len(value):
                return False
            if ch == "_" or ch == value[v]:
                return match(v + 1, p + 1)
            return False

        return match(0, 0)

    @given(
        value=st.text(alphabet="ab%._x", max_size=8),
        pattern=st.text(alphabet="ab%._x", max_size=6),
    )
    @settings(max_examples=300)
    def test_matches_oracle(self, value, pattern):
        compiled = bool(Like.compile_pattern(pattern).match(value))
        assert compiled == self._oracle(value, pattern)


class TestSqlRoundTripProperty:
    @given(
        rows=st.dictionaries(
            _KEYS, st.tuples(_TEXT, st.integers(-10**6, 10**6)),
            min_size=0, max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_insert_then_select_returns_all(self, rows):
        db = Database()
        db.execute(
            "CREATE TABLE t (k VARCHAR(10) PRIMARY KEY, s VARCHAR(30), n INTEGER)"
        )
        for key, (text, number) in rows.items():
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (key, text, number))
        result = db.execute("SELECT k, s, n FROM t")
        assert {(r[0], r[1], r[2]) for r in result.rows} == {
            (k, s, n) for k, (s, n) in rows.items()
        }
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)

    @given(
        values=st.lists(st.integers(-1000, 1000), min_size=0, max_size=30),
        low=st.integers(-1000, 1000),
        high=st.integers(-1000, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_between_filter_matches_python(self, values, low, high):
        db = Database()
        db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, n INTEGER)")
        for i, value in enumerate(values):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, value))
        result = db.execute(
            "SELECT n FROM t WHERE n BETWEEN ? AND ? ORDER BY n, i", (low, high)
        )
        expected = sorted(v for v in values if low <= v <= high)
        assert [r[0] for r in result.rows] == expected

    @given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_aggregates_match_python(self, values):
        db = Database()
        db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, n INTEGER)")
        for i, value in enumerate(values):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, value))
        row = db.execute(
            "SELECT COUNT(*), SUM(n), MIN(n), MAX(n), AVG(n) FROM t"
        ).first()
        assert row[0] == len(values)
        assert row[1] == sum(values)
        assert row[2] == min(values)
        assert row[3] == max(values)
        assert row[4] == pytest.approx(sum(values) / len(values))

    @given(values=st.lists(st.integers(-50, 50), min_size=0, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_order_by_sorts(self, values):
        db = Database()
        db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, n INTEGER)")
        for i, value in enumerate(values):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, value))
        asc = [r[0] for r in db.execute("SELECT n FROM t ORDER BY n").rows]
        desc = [r[0] for r in db.execute("SELECT n FROM t ORDER BY n DESC").rows]
        assert asc == sorted(values)
        assert desc == sorted(values, reverse=True)


class TestTransactionProperty:
    @given(
        initial=st.dictionaries(_KEYS, st.integers(0, 100), min_size=1, max_size=10),
        ops=st.lists(
            st.tuples(st.sampled_from(["insert", "delete", "update"]), _KEYS,
                      st.integers(0, 100)),
            max_size=15,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_rollback_restores_exact_state(self, initial, ops):
        db = Database()
        db.execute("CREATE TABLE t (k VARCHAR(10) PRIMARY KEY, n INTEGER)")
        for key, number in initial.items():
            db.execute("INSERT INTO t VALUES (?, ?)", (key, number))
        before = set(db.execute("SELECT k, n FROM t").rows)

        db.execute("BEGIN")
        for kind, key, number in ops:
            try:
                if kind == "insert":
                    db.execute("INSERT INTO t VALUES (?, ?)", (key + "X", number))
                elif kind == "delete":
                    db.execute("DELETE FROM t WHERE k = ?", (key,))
                else:
                    db.execute("UPDATE t SET n = ? WHERE k = ?", (number, key))
            except UniqueViolation:
                pass  # statement-level rollback keeps the txn consistent
        db.execute("ROLLBACK")
        after = set(db.execute("SELECT k, n FROM t").rows)
        assert after == before


class TestIndexProperty:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 20)),
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_sorted_index_matches_naive_set(self, ops):
        index = SortedIndex("ix", ["N"])
        naive: set[tuple[int, int]] = set()
        for kind, key in ops:
            rowid = key * 7 + 1
            if kind == "add" and (key, rowid) not in naive:
                index.add((key,), rowid)
                naive.add((key, rowid))
            elif kind == "remove" and (key, rowid) in naive:
                index.remove((key,), rowid)
                naive.discard((key, rowid))
        for probe in range(0, 21, 5):
            assert index.find((probe,)) == {
                r for k, r in naive if k == probe
            }
        lo, hi = 3, 15
        assert sorted(index.range_scan((lo,), (hi,))) == sorted(
            r for k, r in naive if lo <= k <= hi
        )

    @given(
        rows=st.lists(
            st.tuples(_KEYS, st.integers(0, 50)), min_size=0, max_size=30
        )
    )
    @settings(max_examples=80)
    def test_table_indexes_consistent_with_heap(self, rows):
        schema = TableSchema(
            "T",
            [Column("K", VarcharType(10)), Column("N", IntegerType())],
            primary_key=("K",),
        )
        table = Table(schema)
        stored: dict[str, int] = {}
        for key, number in rows:
            if key in stored:
                continue
            table.insert((key, number))
            stored[key] = number
        # every key is findable through the pk index and matches the heap
        pk_index = table.indexes["PK_T"]
        for key, number in stored.items():
            rowids = pk_index.find((key,))
            assert len(rowids) == 1
            assert table.row(next(iter(rowids))) == (key, number)
        assert len(table) == len(stored)


class TestTokenProperty:
    @given(
        scope=st.text(alphabet=string.ascii_letters + "/._-", min_size=1, max_size=40),
        validity=st.floats(min_value=0.5, max_value=10_000),
        elapsed_fraction=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=150)
    def test_token_valid_iff_within_interval(self, scope, validity, elapsed_fraction):
        clock = {"now": 1_000_000.0}
        tm = TokenManager(
            secret=b"k", validity_seconds=validity,
            time_source=lambda: clock["now"],
        )
        token = tm.issue(scope)
        clock["now"] += validity * elapsed_fraction
        if elapsed_fraction <= 0.999:  # clear of the ms-resolution boundary
            assert tm.validate(scope, token)
        elif elapsed_fraction >= 1.001:
            with pytest.raises(TokenExpiredError):
                tm.validate(scope, token)

    @given(
        scope=st.text(alphabet=string.ascii_letters + "/", min_size=1, max_size=20),
        other=st.text(alphabet=string.ascii_letters + "/", min_size=1, max_size=20),
    )
    @settings(max_examples=100)
    def test_token_never_transfers_scopes(self, scope, other):
        tm = TokenManager(secret=b"k", time_source=lambda: 0.0)
        token = tm.issue(scope)
        if other != scope:
            with pytest.raises(TokenError):
                tm.validate(other, token)
        else:
            assert tm.validate(other, token)


class TestDatalinkValueProperty:
    @given(
        host=st.text(alphabet=string.ascii_lowercase + ".", min_size=1, max_size=15)
        .filter(lambda h: not h.startswith(".") and ".." not in h and not h.endswith(".")),
        directory=st.lists(
            st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8),
            min_size=0, max_size=3,
        ),
        filename=st.text(
            alphabet=string.ascii_lowercase + string.digits + "._-",
            min_size=1, max_size=12,
        ).filter(lambda f: f not in (".", "..") and ";" not in f),
        token=st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=10),
    )
    @settings(max_examples=150)
    def test_url_round_trips_through_tokenized_form(self, host, directory, filename, token):
        path = "/" + "/".join(directory + [filename]) if directory else f"/{filename}"
        url = f"http://{host}{path}"
        value = DatalinkValue(url)
        assert value.url == url
        tokenized = value.with_token(token)
        parsed = DatalinkValue.parse_tokenized(tokenized.tokenized_url)
        assert parsed.url == url
        assert parsed.token == token


class TestNetsimProperty:
    @given(
        nbytes=st.integers(min_value=0, max_value=10**10),
        rate=st.floats(min_value=0.01, max_value=1000),
    )
    @settings(max_examples=100)
    def test_transfer_seconds_formula(self, nbytes, rate):
        seconds = transfer_seconds(nbytes, rate)
        assert seconds == pytest.approx(nbytes * 8 / (rate * 1e6))
        assert seconds >= 0

    @given(
        day_rate=st.floats(min_value=0.1, max_value=10),
        evening_rate=st.floats(min_value=0.1, max_value=10),
        start_hour=st.floats(min_value=0, max_value=23.99),
        nbytes=st.integers(min_value=1, max_value=10**9),
    )
    @settings(max_examples=100, suppress_health_check=[HealthCheck.filter_too_much])
    def test_piecewise_duration_bounded_by_extremes(
        self, day_rate, evening_rate, start_hour, nbytes
    ):
        """Integrated duration always lies between the all-fast and all-slow
        closed forms."""
        from repro.netsim import Host, Link, Network, TransferEngine

        profile = BandwidthProfile(
            [(0.0, evening_rate), (8.0, day_rate), (18.0, evening_rate)]
        )
        network = Network()
        network.add_host(Host("a"))
        network.add_host(Host("b"))
        network.add_link(Link("a", "b", profile))
        engine = TransferEngine(network, SimClock(start_hour=start_hour))
        duration = engine.duration("a", "b", nbytes)
        fast = transfer_seconds(nbytes, max(day_rate, evening_rate))
        slow = transfer_seconds(nbytes, min(day_rate, evening_rate))
        assert fast - 1e-6 <= duration <= slow + 1e-6


class TestTurbProperty:
    @given(
        nx=st.integers(min_value=1, max_value=6),
        ny=st.integers(min_value=1, max_value=6),
        nz=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_identity(self, nx, ny, nz, seed):
        import numpy as np

        from repro.turbulence import decode_snapshot, encode_snapshot, generate_snapshot

        fields = generate_snapshot(nx, ny, nz, seed=seed)
        again = decode_snapshot(encode_snapshot(fields))
        for name in ("u", "v", "w", "p"):
            np.testing.assert_array_equal(again[name], fields[name])
