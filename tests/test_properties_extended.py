"""Additional property-based tests: QBE, UNION, views, bench reporting."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import PaperTable
from repro.sqldb import Database
from repro.web.qbe import OPERATORS, QbeQuery, Restriction

_NAMES = st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=6)


def _populated_db(values):
    db = Database()
    db.execute("CREATE TABLE T (i INTEGER PRIMARY KEY, n INTEGER, s VARCHAR(12))")
    for i, (n, s) in enumerate(values):
        db.execute("INSERT INTO T VALUES (?, ?, ?)", (i, n, s))
    return db


class TestQbeProperty:
    @given(
        values=st.lists(
            st.tuples(
                st.integers(-50, 50),
                st.text(alphabet="abc%_", min_size=0, max_size=6),
            ),
            max_size=25,
        ),
        op=st.sampled_from([o for o in OPERATORS if o != "LIKE"]),
        threshold=st.integers(-50, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_numeric_restriction_matches_python(self, values, op, threshold):
        db = _populated_db(values)
        query = QbeQuery(
            "T", fields=["T.N"],
            restrictions=[Restriction("T.N", op, threshold)],
        )
        sql, params = query.to_sql()
        got = sorted(r[0] for r in db.execute(sql, params).rows)
        py_op = {
            "=": lambda a: a == threshold,
            "<>": lambda a: a != threshold,
            "<": lambda a: a < threshold,
            "<=": lambda a: a <= threshold,
            ">": lambda a: a > threshold,
            ">=": lambda a: a >= threshold,
        }[op]
        expected = sorted(n for n, _s in values if py_op(n))
        assert got == expected

    @given(
        values=st.lists(
            st.tuples(st.integers(0, 5), st.text(alphabet="ab", min_size=1, max_size=4)),
            max_size=20,
        ),
        prefix=st.text(alphabet="ab", min_size=0, max_size=2),
    )
    @settings(max_examples=50, deadline=None)
    def test_wildcard_promotion_equivalent_to_like(self, values, prefix):
        db = _populated_db(values)
        query = QbeQuery(
            "T", fields=["T.S"],
            restrictions=[Restriction("T.S", "=", prefix + "%")],
        )
        sql, params = query.to_sql()
        assert " LIKE " in sql
        got = sorted(r[0] for r in db.execute(sql, params).rows)
        expected = sorted(s for _n, s in values if s.startswith(prefix))
        assert got == expected


class TestUnionProperty:
    @given(
        left=st.sets(st.integers(0, 30), max_size=15),
        right=st.sets(st.integers(0, 30), max_size=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_union_is_set_union(self, left, right):
        db = Database()
        db.execute("CREATE TABLE L (k INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE R (k INTEGER PRIMARY KEY)")
        for v in left:
            db.execute("INSERT INTO L VALUES (?)", (v,))
        for v in right:
            db.execute("INSERT INTO R VALUES (?)", (v,))
        rows = db.execute("SELECT k FROM L UNION SELECT k FROM R").rows
        assert sorted(r[0] for r in rows) == sorted(left | right)
        all_rows = db.execute("SELECT k FROM L UNION ALL SELECT k FROM R").rows
        assert len(all_rows) == len(left) + len(right)


class TestViewProperty:
    @given(
        values=st.lists(st.integers(-100, 100), max_size=25),
        threshold=st.integers(-100, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_view_equals_inline_query(self, values, threshold):
        db = Database()
        db.execute("CREATE TABLE T (i INTEGER PRIMARY KEY, n INTEGER)")
        for i, v in enumerate(values):
            db.execute("INSERT INTO T VALUES (?, ?)", (i, v))
        db.execute(f"CREATE VIEW V AS SELECT n FROM T WHERE n > {threshold}")
        via_view = sorted(r[0] for r in db.execute("SELECT n FROM V").rows)
        inline = sorted(
            r[0] for r in db.execute(
                "SELECT n FROM T WHERE n > ?", (threshold,)
            ).rows
        )
        assert via_view == inline


class TestPaperTableUnit:
    def test_alignment_and_content(self):
        table = PaperTable("X1", "A demo", ["col", "value"])
        table.add_row("short", 1)
        table.add_row("a much longer cell", 22)
        text = table.render()
        assert "=== [X1] A demo ===" in text
        lines = text.splitlines()
        header = next(l for l in lines if l.startswith("col"))
        assert "value" in header
        assert any("a much longer cell" in l for l in lines)

    def test_wrong_arity_rejected(self):
        table = PaperTable("X", "t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    @given(
        rows=st.lists(
            st.tuples(_NAMES, st.integers(0, 10**6)), min_size=1, max_size=10
        )
    )
    @settings(max_examples=30)
    def test_every_cell_appears(self, rows):
        table = PaperTable("P", "prop", ["name", "number"])
        for name, number in rows:
            table.add_row(name, number)
        text = table.render()
        for name, number in rows:
            assert name in text
            assert str(number) in text
