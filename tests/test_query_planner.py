"""Cost-aware planner operators: pushdown, hash join, range scan, top-N,
hashed semi-joins — plus the satellite fixes (set-based DISTINCT, stable
index-lookup order, one view materialisation per statement)."""

from __future__ import annotations

import time

import pytest

from repro.obs import Observability
from repro.sqldb.database import Database
from repro.sqldb.planner import (
    ColumnRange,
    assign_filters,
    describe,
    like_prefix,
    range_bounds,
)
from repro.sqldb.parser import parse_sql


def _plan(db: Database, sql: str, params=(), pushdown=True) -> str:
    return db.explain(sql, params, pushdown=pushdown)


@pytest.fixture()
def joined_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE L (K INTEGER PRIMARY KEY, B INTEGER, NAME VARCHAR(20))")
    db.execute("CREATE TABLE R (K INTEGER PRIMARY KEY, D INTEGER, TAG VARCHAR(20))")
    for i in range(50):
        db.execute("INSERT INTO L VALUES (?, ?, ?)", (i, i % 7, f"n{i:03d}"))
        db.execute("INSERT INTO R VALUES (?, ?, ?)", (i, i % 7, f"t{i:03d}"))
    return db


# -- predicate pushdown ------------------------------------------------------------


class TestPushdown:
    def test_filter_pushed_to_owning_table(self, joined_db):
        plan = _plan(
            joined_db,
            "SELECT L.K FROM L JOIN R ON L.K = R.K WHERE L.B = 3 AND R.TAG = 't001'",
        )
        assert "filter pushdown at L" in plan
        # the R-side conjunct runs no later than the R join stage
        assert "R.TAG = 't001'" in plan

    def test_pushdown_off_keeps_naive_plan(self, joined_db):
        plan = _plan(
            joined_db,
            "SELECT L.K FROM L JOIN R ON L.B = R.D WHERE L.B = 3",
            pushdown=False,
        )
        assert "filter pushdown" not in plan
        assert "hash join" not in plan
        assert "nested-loop join" in plan

    def test_pushdown_filters_same_rows(self, joined_db):
        sql = "SELECT L.K, R.K FROM L JOIN R ON L.K = R.K WHERE R.D > 2 AND L.NAME LIKE 'n0%'"
        on = joined_db.execute(sql).rows
        off = joined_db.execute(sql, pushdown=False).rows
        assert sorted(on) == sorted(off)

    def test_left_join_null_rows_survive_pushdown(self):
        db = Database()
        db.execute("CREATE TABLE P (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("CREATE TABLE C (K INTEGER PRIMARY KEY, P_K INTEGER)")
        db.execute("INSERT INTO P VALUES (1, 10), (2, 20)")
        db.execute("INSERT INTO C VALUES (1, 1)")
        sql = "SELECT P.K, C.K FROM P LEFT JOIN C ON P.K = C.P_K WHERE P.V >= 10"
        rows = db.execute(sql).rows
        assert sorted(rows, key=repr) == sorted(
            db.execute(sql, pushdown=False).rows, key=repr
        )
        assert (2, None) in rows

    def test_obs_counter_counts_filtered_rows(self):
        obs = Observability(enabled=True)
        db = Database(obs=obs)
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        for i in range(10):
            db.execute("INSERT INTO T VALUES (?, ?)", (i, i))
        db.execute("SELECT T.K FROM T, T AS U WHERE T.V > 4")
        counter = obs.metrics.counter("sqldb.scan.pushdown_filtered")
        assert counter.value >= 5  # half of T removed before the cross join


# -- hash join ---------------------------------------------------------------------


class TestHashJoin:
    def test_unindexed_equi_join_uses_hash(self, joined_db):
        plan = _plan(joined_db, "SELECT L.K FROM L JOIN R ON L.B = R.D")
        assert "hash join" in plan

    def test_indexed_join_still_prefers_index(self, joined_db):
        plan = _plan(joined_db, "SELECT L.K FROM L JOIN R ON L.K = R.K")
        assert "index nested-loop join" in plan

    def test_hash_join_rows_match_nested_loop(self, joined_db):
        sql = "SELECT L.K, R.K FROM L JOIN R ON L.B = R.D"
        assert sorted(joined_db.execute(sql).rows) == sorted(
            joined_db.execute(sql, pushdown=False).rows
        )

    def test_left_hash_join_null_extends(self):
        db = Database()
        db.execute("CREATE TABLE A (K INTEGER PRIMARY KEY, X INTEGER)")
        db.execute("CREATE TABLE B (K INTEGER PRIMARY KEY, Y INTEGER)")
        db.execute("INSERT INTO A VALUES (1, 1), (2, 2), (3, NULL)")
        db.execute("INSERT INTO B VALUES (10, 1)")
        sql = "SELECT A.K, B.K FROM A LEFT JOIN B ON A.X = B.Y"
        rows = db.execute(sql).rows
        assert "hash join" in db.explain(sql)
        assert sorted(rows, key=repr) == sorted(
            db.execute(sql, pushdown=False).rows, key=repr
        )
        # NULL join keys never match; they null-extend under LEFT
        assert (3, None) in rows

    def test_hash_join_residual_handles_extra_conjuncts(self, joined_db):
        sql = "SELECT L.K, R.K FROM L JOIN R ON L.B = R.D AND L.K < R.K"
        assert sorted(joined_db.execute(sql).rows) == sorted(
            joined_db.execute(sql, pushdown=False).rows
        )

    def test_hash_build_rows_counter(self):
        obs = Observability(enabled=True)
        db = Database(obs=obs)
        db.execute("CREATE TABLE A (K INTEGER PRIMARY KEY, X INTEGER)")
        db.execute("CREATE TABLE B (K INTEGER PRIMARY KEY, Y INTEGER)")
        for i in range(8):
            db.execute("INSERT INTO A VALUES (?, ?)", (i, i))
            db.execute("INSERT INTO B VALUES (?, ?)", (i, i))
        db.execute("SELECT A.K FROM A JOIN B ON A.X = B.Y")
        assert obs.metrics.counter("sqldb.join.hash_build_rows").value == 8


# -- range index scans -------------------------------------------------------------


@pytest.fixture()
def ranged_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE M (K INTEGER PRIMARY KEY, G INTEGER, S VARCHAR(20))")
    db.execute("CREATE INDEX IX_G ON M (G)")
    db.execute("CREATE INDEX IX_S ON M (S)")
    for i in range(100):
        db.execute("INSERT INTO M VALUES (?, ?, ?)", (i, i * 2, f"s{i:04d}"))
    return db


class TestRangeScan:
    @pytest.mark.parametrize(
        "predicate,params",
        [
            ("G > ?", (50,)),
            ("G >= ?", (50,)),
            ("G < ?", (50,)),
            ("G <= ?", (50,)),
            ("G BETWEEN ? AND ?", (40, 60)),
            ("? < G", (120,)),
        ],
    )
    def test_inequalities_drive_range_scan(self, ranged_db, predicate, params):
        sql = f"SELECT K FROM M WHERE {predicate}"
        assert "range scan M via IX_G" in _plan(ranged_db, sql, params)
        assert sorted(ranged_db.execute(sql, params).rows) == sorted(
            ranged_db.execute(sql, params, pushdown=False).rows
        )

    def test_like_prefix_drives_range_scan(self, ranged_db):
        sql = "SELECT K FROM M WHERE S LIKE 's000%'"
        assert "range scan M via IX_S" in _plan(ranged_db, sql)
        assert len(ranged_db.execute(sql).rows) == 10

    def test_like_without_prefix_stays_seq_scan(self, ranged_db):
        plan = _plan(ranged_db, "SELECT K FROM M WHERE S LIKE '%42'")
        assert "seq scan" in plan
        assert "range scan" not in plan

    def test_range_scan_disabled_without_pushdown(self, ranged_db):
        plan = _plan(ranged_db, "SELECT K FROM M WHERE G > 50", pushdown=False)
        assert "range scan" not in plan
        assert "seq scan" in plan

    def test_merged_bounds(self, ranged_db):
        sql = "SELECT K FROM M WHERE G > ? AND G <= ?"
        plan = _plan(ranged_db, sql, (20, 80))
        assert "range scan" in plan
        rows = ranged_db.execute(sql, (20, 80)).rows
        assert rows and all(20 < 2 * k <= 80 for (k,) in rows)


# -- Top-N and early LIMIT ---------------------------------------------------------


class TestTopN:
    def test_order_by_limit_uses_heap(self, joined_db):
        plan = _plan(joined_db, "SELECT K FROM L ORDER BY B DESC LIMIT 5")
        assert "top-N sort (N=5)" in plan

    def test_offset_counts_toward_heap_size(self, joined_db):
        plan = _plan(joined_db, "SELECT K FROM L ORDER BY K LIMIT 5 OFFSET 10")
        assert "top-N sort (N=15)" in plan
        rows = joined_db.execute("SELECT K FROM L ORDER BY K LIMIT 5 OFFSET 10").rows
        assert rows == [(10,), (11,), (12,), (13,), (14,)]

    def test_topn_matches_full_sort(self, joined_db):
        sql = "SELECT K, B FROM L ORDER BY B DESC, K LIMIT 7"
        assert joined_db.execute(sql).rows == joined_db.execute(
            sql, pushdown=False
        ).rows

    def test_limit_without_order_stops_early(self, joined_db):
        plan = _plan(joined_db, "SELECT K FROM L LIMIT 3")
        assert "limit 3 (early stop)" in plan
        assert len(joined_db.execute("SELECT K FROM L LIMIT 3").rows) == 3


# -- DISTINCT ----------------------------------------------------------------------


class TestDistinct:
    def test_distinct_announces_hash(self, joined_db):
        assert "distinct (hash)" in _plan(joined_db, "SELECT DISTINCT B FROM L")

    def test_distinct_5k_rows_is_fast(self):
        """Regression: DISTINCT used a quadratic list-membership scan."""
        db = Database()
        db.execute("CREATE TABLE D (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute(
            "INSERT INTO D VALUES " + ", ".join(f"({i}, {i})" for i in range(5000))
        )
        started = time.perf_counter()
        rows = db.execute("SELECT DISTINCT V FROM D").rows
        elapsed = time.perf_counter() - started
        assert len(rows) == 5000
        assert elapsed < 2.0  # the quadratic path took tens of seconds

    def test_distinct_with_nulls(self):
        db = Database()
        db.execute("CREATE TABLE D (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO D VALUES (1, NULL), (2, NULL), (3, 1)")
        rows = db.execute("SELECT DISTINCT V FROM D").rows
        assert sorted(rows, key=repr) == [(1,), (None,)]


# -- semi-joins --------------------------------------------------------------------


class TestSemiJoins:
    def test_in_subquery_announces_hash(self, joined_db):
        plan = _plan(
            joined_db, "SELECT K FROM L WHERE B IN (SELECT D FROM R WHERE K < 5)"
        )
        assert "hashed semi-join" in plan

    def test_in_subquery_rows_match_naive(self, joined_db):
        sql = "SELECT K FROM L WHERE B IN (SELECT D FROM R WHERE K < 5)"
        assert sorted(joined_db.execute(sql).rows) == sorted(
            joined_db.execute(sql, pushdown=False).rows
        )

    def test_not_in_with_null_returns_nothing(self):
        db = Database()
        db.execute("CREATE TABLE A (K INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE B (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO A VALUES (1), (2)")
        db.execute("INSERT INTO B VALUES (1, 1), (2, NULL)")
        rows = db.execute(
            "SELECT K FROM A WHERE K NOT IN (SELECT V FROM B)"
        ).rows
        assert rows == []  # NULL in the list makes NOT IN unknown

    def test_exists_announces_semi_join(self, joined_db):
        plan = _plan(
            joined_db, "SELECT K FROM L WHERE EXISTS (SELECT 1 FROM R WHERE R.K = 0)"
        )
        assert "semi-join: EXISTS" in plan


# -- deterministic ordering (satellite) --------------------------------------------


class TestDeterminism:
    def test_index_lookup_order_is_stable(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("CREATE INDEX IX_V ON T (V)")
        for i in range(30):
            db.execute("INSERT INTO T VALUES (?, 7)", (i,))
        reference = db.execute("SELECT K FROM T WHERE V = 7").rows
        for _ in range(5):
            assert db.execute("SELECT K FROM T WHERE V = 7").rows == reference
        assert reference == sorted(reference)

    def test_index_join_order_is_stable(self):
        db = Database()
        db.execute("CREATE TABLE P (K INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE C (K INTEGER PRIMARY KEY, P_K INTEGER)")
        db.execute("CREATE INDEX IX_PK ON C (P_K)")
        db.execute("INSERT INTO P VALUES (1)")
        for i in range(20):
            db.execute("INSERT INTO C VALUES (?, 1)", (i,))
        sql = "SELECT C.K FROM P JOIN C ON P.K = C.P_K"
        reference = db.execute(sql).rows
        for _ in range(5):
            assert db.execute(sql).rows == reference


# -- view materialisation cache (satellite) ----------------------------------------


class TestViewCache:
    def test_self_join_materialises_view_once(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO T VALUES (1, 10), (2, 20)")
        db.execute("CREATE VIEW VW AS SELECT K, V FROM T")
        before = db._executor.view_materialisations
        rows = db.execute(
            "SELECT A.K, B.K FROM VW AS A JOIN VW AS B ON A.K = B.K"
        ).rows
        assert sorted(rows) == [(1, 1), (2, 2)]
        assert db._executor.view_materialisations - before == 1

    def test_cache_does_not_leak_across_statements(self):
        db = Database()
        db.execute("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)")
        db.execute("INSERT INTO T VALUES (1, 10)")
        db.execute("CREATE VIEW VW AS SELECT K, V FROM T")
        assert db.execute("SELECT K FROM VW").rows == [(1,)]
        db.execute("INSERT INTO T VALUES (2, 20)")
        # a later statement must see the new row, not a stale snapshot
        assert sorted(db.execute("SELECT K FROM VW").rows) == [(1,), (2,)]


# -- planner unit tests ------------------------------------------------------------


class TestPlannerHelpers:
    def test_like_prefix(self):
        assert like_prefix("abc%") == "abc"
        assert like_prefix("abc_d") == "abc"
        assert like_prefix("%abc") is None
        assert like_prefix("plain") == "plain"

    def test_column_range_merging(self):
        stmt = parse_sql("SELECT * FROM T WHERE G > 10 AND G <= 50 AND G > 20")
        from repro.sqldb.planner import conjuncts

        ranges = range_bounds(conjuncts(stmt.where), ())
        assert len(ranges) == 1
        crange = ranges[0]
        assert isinstance(crange, ColumnRange)
        assert crange.low == 20 and not crange.include_low
        assert crange.high == 50 and crange.include_high

    def test_assign_filters_positions(self):
        stmt = parse_sql(
            "SELECT * FROM A JOIN B ON A.K = B.K "
            "WHERE A.X = 1 AND B.Y = 2 AND A.X < B.Y"
        )
        from repro.sqldb.planner import conjuncts

        stages, residual = assign_filters(
            conjuncts(stmt.where), ["A", "B"], {"X": "A", "Y": "B"}
        )
        assert [describe(f) for f in stages[0]] == ["A.X = 1"]
        assert [describe(f) for f in stages[1]] == ["B.Y = 2", "A.X < B.Y"]
        assert residual == []

    def test_describe_round_trips_common_shapes(self):
        stmt = parse_sql(
            "SELECT * FROM T WHERE A = 1 AND B LIKE 'x%' AND C BETWEEN 1 AND 2"
        )
        from repro.sqldb.planner import conjuncts

        rendered = [describe(c) for c in conjuncts(stmt.where)]
        assert rendered == [
            "A = 1",
            "B LIKE 'x%'",
            "C BETWEEN 1 AND 2",
        ]
