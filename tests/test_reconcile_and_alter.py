"""Tests for ALTER TABLE and datalink reconciliation."""

import pytest

from repro.datalink import DataLinker, TokenManager, reconcile, repair
from repro.errors import (
    CatalogError,
    PermissionDeniedError,
    SqlSyntaxError,
    TransactionError,
)
from repro.fileserver import FileServer
from repro.sqldb import Database


class TestAlterTableAdd:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(10))")
        database.execute("INSERT INTO t VALUES (1,'a'),(2,'b')")
        return database

    def test_add_with_default_backfills(self, db):
        db.execute("ALTER TABLE t ADD COLUMN score INTEGER DEFAULT 5")
        assert db.execute("SELECT * FROM t ORDER BY k").rows == [
            (1, "a", 5), (2, "b", 5),
        ]

    def test_add_nullable_backfills_null(self, db):
        db.execute("ALTER TABLE t ADD COLUMN note VARCHAR(20)")
        assert db.execute("SELECT note FROM t WHERE k = 1").scalar() is None

    def test_new_column_usable_immediately(self, db):
        db.execute("ALTER TABLE t ADD COLUMN score INTEGER DEFAULT 0")
        db.execute("UPDATE t SET score = 9 WHERE k = 2")
        db.execute("INSERT INTO t VALUES (3, 'c', 1)")
        assert db.execute(
            "SELECT k FROM t WHERE score > 0 ORDER BY k"
        ).rows == [(2,), (3,)]

    def test_add_not_null_without_default_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE t ADD COLUMN r INTEGER NOT NULL")

    def test_add_not_null_to_empty_table_ok(self):
        db = Database()
        db.execute("CREATE TABLE e (k INTEGER PRIMARY KEY)")
        db.execute("ALTER TABLE e ADD COLUMN r INTEGER NOT NULL")
        from repro.errors import NotNullViolation

        with pytest.raises(NotNullViolation):
            db.execute("INSERT INTO e VALUES (1, NULL)")

    def test_duplicate_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE t ADD COLUMN v VARCHAR(5)")

    def test_constraint_clauses_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("ALTER TABLE t ADD COLUMN x INTEGER PRIMARY KEY")

    def test_not_in_transaction(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("ALTER TABLE t ADD COLUMN x INTEGER")
        db.execute("ROLLBACK")

    def test_xuis_regeneration_sees_new_column(self, db):
        from repro.xuis import generate_default_xuis

        db.execute("ALTER TABLE t ADD COLUMN score INTEGER DEFAULT 1")
        doc = generate_default_xuis(db)
        assert doc.table("T").has_column("SCORE")


class TestAlterTableDrop:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(10), n INTEGER)"
        )
        database.execute("INSERT INTO t VALUES (1,'a',10),(2,'b',20)")
        return database

    def test_drop_removes_data(self, db):
        db.execute("ALTER TABLE t DROP COLUMN v")
        result = db.execute("SELECT * FROM t ORDER BY k")
        assert result.columns == ["K", "N"]
        assert result.rows == [(1, 10), (2, 20)]

    def test_drop_pk_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE t DROP COLUMN k")

    def test_drop_indexed_rejected(self, db):
        db.execute("CREATE INDEX IX_N ON t (n)")
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE t DROP COLUMN n")

    def test_drop_fk_column_rejected(self):
        db = Database()
        db.execute("CREATE TABLE p (k INTEGER PRIMARY KEY)")
        db.execute(
            "CREATE TABLE c (k INTEGER PRIMARY KEY, p INTEGER REFERENCES p (k))"
        )
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE c DROP COLUMN p")

    def test_drop_checked_column_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, g INTEGER CHECK (g > 0))")
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE t DROP COLUMN g")

    def test_drop_datalink_column_unlinks_files(self):
        linker = DataLinker(TokenManager(secret=b"a", time_source=lambda: 0.0))
        server = linker.register_server(FileServer("fs.a"))
        server.put("/f.bin", b"x")
        db = Database()
        db.set_datalink_hooks(linker)
        db.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, d DATALINK "
            "LINKTYPE URL FILE LINK CONTROL READ PERMISSION DB "
            "WRITE PERMISSION BLOCKED RECOVERY NO ON UNLINK RESTORE)"
        )
        db.execute("INSERT INTO t VALUES (1, 'http://fs.a/f.bin')")
        assert server.filesystem.entry("/f.bin").linked
        db.execute("ALTER TABLE t DROP COLUMN d")
        assert not server.filesystem.entry("/f.bin").linked

    def test_alter_survives_recovery(self, tmp_path):
        d = str(tmp_path)
        db = Database(d)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(5))")
        db.execute("INSERT INTO t VALUES (1, 'a')")
        db.execute("ALTER TABLE t ADD COLUMN score INTEGER DEFAULT 7")
        db.execute("INSERT INTO t VALUES (2, 'b', 8)")
        db.execute("ALTER TABLE t DROP COLUMN v")
        db2 = Database(d)
        assert db2.execute("SELECT * FROM t ORDER BY k").rows == [(1, 7), (2, 8)]


@pytest.fixture
def deployment():
    linker = DataLinker(TokenManager(secret=b"r", time_source=lambda: 0.0))
    server = linker.register_server(FileServer("fs.r"))
    server.put("/data/a.bin", b"a")
    server.put("/data/b.bin", b"b")
    db = Database()
    db.set_datalink_hooks(linker)
    db.execute(
        "CREATE TABLE R (k INTEGER PRIMARY KEY, d DATALINK "
        "LINKTYPE URL FILE LINK CONTROL READ PERMISSION DB "
        "WRITE PERMISSION BLOCKED RECOVERY YES ON UNLINK RESTORE)"
    )
    db.execute("INSERT INTO R VALUES (1, 'http://fs.r/data/a.bin')")
    db.execute("INSERT INTO R VALUES (2, 'http://fs.r/data/b.bin')")
    return db, linker, server


class TestReconcile:
    def test_clean_deployment(self, deployment):
        db, linker, _server = deployment
        report = reconcile(db, linker)
        assert report.consistent
        assert report.links_checked == 2
        assert "consistent" in report.describe()

    def test_detects_unlinked(self, deployment):
        """Server rebuilt from raw files: content present, control lost."""
        db, linker, server = deployment
        server.dl_unlink("/data/a.bin", delete=False)
        report = reconcile(db, linker)
        assert [f.path for f in report.by_kind("unlinked")] == ["/data/a.bin"]

    def test_detects_dangling_missing_file(self, deployment):
        db, linker, server = deployment
        server.dl_unlink("/data/a.bin", delete=True)
        report = reconcile(db, linker)
        findings = report.by_kind("dangling")
        assert len(findings) == 1
        assert findings[0].table == "R"

    def test_detects_dangling_unknown_host(self, deployment):
        db, linker, _server = deployment
        db.execute(
            "CREATE TABLE LOOSE (k INTEGER PRIMARY KEY, "
            "d DATALINK LINKTYPE URL NO LINK CONTROL)"
        )
        db.execute("INSERT INTO LOOSE VALUES (1, 'http://ghost.host/x.bin')")
        report = reconcile(db, linker)
        assert any(
            f.kind == "dangling" and f.detail == "host not registered"
            for f in report.findings
        )

    def test_detects_orphaned(self, deployment):
        db, linker, server = deployment
        # delete a row while bypassing the unlink (simulates a crash by
        # re-linking the file behind the database's back)
        db.execute("DELETE FROM R WHERE k = 2")
        server.dl_link("/data/b.bin", read_db=True, write_blocked=True,
                       recovery=True)
        report = reconcile(db, linker)
        assert [f.path for f in report.by_kind("orphaned")] == ["/data/b.bin"]

    def test_repair_relinks_and_releases(self, deployment):
        db, linker, server = deployment
        server.dl_unlink("/data/a.bin", delete=False)      # unlinked
        db.execute("DELETE FROM R WHERE k = 2")
        server.dl_link("/data/b.bin", read_db=True, write_blocked=True,
                       recovery=True)                       # orphaned
        after = repair(db, linker)
        assert after.consistent
        # a.bin is protected again — token required:
        with pytest.raises(PermissionDeniedError):
            server.serve("/data/a.bin")
        # b.bin is free again:
        assert not server.filesystem.entry("/data/b.bin").linked

    def test_repair_leaves_dangling_for_curators(self, deployment):
        db, linker, server = deployment
        server.dl_unlink("/data/a.bin", delete=True)
        after = repair(db, linker)
        assert len(after.by_kind("dangling")) == 1
