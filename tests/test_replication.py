"""Tests for repro.replication: placement, the async queue, failure
detection, read failover, anti-entropy repair, and the web-tier
acceptance scenario (one replica dies, downloads keep working)."""

import tempfile

import pytest

from repro import faultinject
from repro.datalink import (
    DataLinker,
    TokenManager,
    coordinated_backup,
    coordinated_restore,
)
from repro.errors import (
    AllReplicasDownError,
    FileNotFoundOnServer,
    PermissionDeniedError,
    RecoveryError,
    ReplicationError,
)
from repro.fileserver import FileServer
from repro.netsim import Host, Network
from repro.replication import (
    HealthMonitor,
    PlacementPolicy,
    ReplicationManager,
    check_replica_set,
    repair_replica_set,
)
from repro.replication.replicaset import ReplicaSet
from repro.sqldb import Database


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def make_servers(n, prefix="phys"):
    return [FileServer(f"{prefix}{i}.example.org") for i in range(n)]


DATALINK_DDL = (
    "CREATE TABLE RESULT_FILE ("
    " file_name VARCHAR(40) PRIMARY KEY,"
    " download DATALINK LINKTYPE URL FILE LINK CONTROL INTEGRITY ALL"
    "   READ PERMISSION DB WRITE PERMISSION BLOCKED RECOVERY YES"
    "   ON UNLINK RESTORE)"
)


class TestPlacement:
    def test_deterministic(self):
        servers = make_servers(5)
        policy = PlacementPolicy(replication_factor=3)
        first = [s.host for s in policy.choose("fs1.soton.ac.uk", servers)]
        again = [s.host for s in policy.choose("fs1.soton.ac.uk", servers)]
        assert first == again
        assert len(first) == 3

    def test_candidate_order_irrelevant(self):
        servers = make_servers(5)
        policy = PlacementPolicy(replication_factor=2)
        forward = [s.host for s in policy.choose("fs1", servers)]
        backward = [s.host for s in policy.choose("fs1", list(reversed(servers)))]
        assert forward == backward

    def test_different_logical_hosts_spread(self):
        servers = make_servers(8)
        policy = PlacementPolicy(replication_factor=2)
        primaries = {
            policy.choose(f"fs{i}", servers)[0].host for i in range(10)
        }
        assert len(primaries) > 1  # not everything lands on one server

    def test_removing_unused_candidate_is_stable(self):
        """Rendezvous property: dropping a server not in the chosen set
        does not move the replicas."""
        servers = make_servers(6)
        policy = PlacementPolicy(replication_factor=2)
        chosen = policy.choose("fs1", servers)
        chosen_hosts = [s.host for s in chosen]
        survivors = [s for s in servers if s.host not in chosen_hosts][1:]
        reduced = policy.choose("fs1", chosen + survivors)
        assert [s.host for s in reduced] == chosen_hosts

    def test_factor_validation(self):
        with pytest.raises(ReplicationError):
            PlacementPolicy(replication_factor=0)
        with pytest.raises(ReplicationError):
            PlacementPolicy().choose("fs1", [])


class TestReplicationQueue:
    def make_set(self, n=3):
        clock = FakeClock()
        rs = ReplicaSet("logical.host", make_servers(n), time_source=clock)
        return rs, clock

    def test_put_propagates_on_pump(self):
        rs, _clock = self.make_set()
        rs.put("/data/a.dat", b"payload")
        assert rs.primary.server.filesystem.exists("/data/a.dat")
        assert not rs.followers[0].server.filesystem.exists("/data/a.dat")
        assert rs.queue.max_lag() == 1
        rs.pump()
        assert rs.queue.max_lag() == 0
        for replica in rs.followers:
            assert replica.server.filesystem.read("/data/a.dat") == b"payload"

    def test_link_and_unlink_propagate(self):
        rs, _clock = self.make_set(2)
        rs.put("/a", b"1")
        rs.dl_link("/a", read_db=True, write_blocked=True, recovery=True)
        rs.pump()
        entry = rs.followers[0].server.filesystem.entry("/a")
        assert entry.linked and entry.read_db and entry.write_blocked
        rs.dl_unlink("/a", delete=True)
        rs.pump()
        assert not rs.followers[0].server.filesystem.exists("/a")

    def test_lag_counts_unapplied_ops(self):
        rs, _clock = self.make_set(2)
        rs.kill(rs.followers[0].host)
        for i in range(4):
            rs.put(f"/f{i}", b"x")
        rs.pump()
        assert rs.queue.lag(rs.followers[0]) == 4
        assert rs.queue.depth() == 4

    def test_retry_with_exponential_backoff(self):
        rs, clock = self.make_set(2)
        follower = rs.followers[0]
        rs.kill(follower.host)
        rs.put("/a", b"1")

        rs.pump()  # fails -> schedules retry at base delay
        assert rs.queue.retries == 1
        first_deadline = follower.next_attempt_at
        assert first_deadline == pytest.approx(clock.now + rs.queue.backoff_base)

        # before the deadline nothing is attempted
        rs.pump()
        assert rs.queue.retries == 1

        clock.now = first_deadline + 0.001
        rs.pump()  # second failure -> delay doubles
        assert rs.queue.retries == 2
        assert follower.next_attempt_at == pytest.approx(
            clock.now + 2 * rs.queue.backoff_base
        )

        rs.revive(follower.host)
        clock.now = follower.next_attempt_at + 0.001
        rs.pump()
        assert rs.queue.max_lag() == 0
        assert follower.push_attempts == 0  # backoff reset on success

    def test_backoff_capped(self):
        rs, clock = self.make_set(2)
        follower = rs.followers[0]
        rs.kill(follower.host)
        rs.put("/a", b"1")
        for _ in range(20):
            clock.now = follower.next_attempt_at + 0.001
            rs.pump()
        assert follower.next_attempt_at - clock.now <= rs.queue.backoff_cap

    def test_ordering_preserved_after_outage(self):
        """Ops queued during an outage apply in order afterwards."""
        rs, _clock = self.make_set(2)
        follower = rs.followers[0]
        rs.put("/a", b"v1")
        rs.pump()
        rs.kill(follower.host)
        rs.put("/a", b"v2")
        rs.put("/a", b"v3")
        rs.pump(force=True)
        assert follower.server.filesystem.read("/a") == b"v1"
        rs.revive(follower.host)
        rs.pump(force=True)
        assert follower.server.filesystem.read("/a") == b"v3"

    def test_compaction_drops_applied_ops(self):
        rs, _clock = self.make_set(2)
        for i in range(5):
            rs.put(f"/f{i}", b"x")
        rs.pump()
        assert len(rs.queue._ops) == 0

    def test_duplicate_replica_hosts_rejected(self):
        server = FileServer("same.host")
        with pytest.raises(ReplicationError):
            ReplicaSet("logical", [server, FileServer("same.host")])


class TestReadFailover:
    def make_set(self):
        clock = FakeClock()
        tm = TokenManager(secret=b"s", validity_seconds=60, time_source=clock)
        rs = ReplicaSet("logical.host", make_servers(3), time_source=clock)
        rs.token_manager = tm
        rs.put("/data/f.dat", b"payload")
        rs.pump()
        return rs, tm, clock

    def test_healthy_read_hits_primary_only(self):
        rs, _tm, _clock = self.make_set()
        assert rs.serve("/data/f.dat") == b"payload"
        assert rs.failovers == 0

    def test_failover_on_killed_primary(self):
        rs, _tm, _clock = self.make_set()
        rs.kill(rs.primary.host)
        assert rs.serve("/data/f.dat") == b"payload"
        assert rs.failovers == 1

    def test_all_replicas_down_raises(self):
        rs, _tm, _clock = self.make_set()
        for replica in list(rs.replicas):
            rs.kill(replica.host)
        with pytest.raises(AllReplicasDownError):
            rs.serve("/data/f.dat")

    def test_token_valid_on_every_replica(self):
        """One token issued for the logical host works on all replicas."""
        rs, tm, _clock = self.make_set()
        rs.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=True)
        rs.pump()
        token = tm.issue("logical.host/data/f.dat")
        for victim in [None, rs.primary.host]:
            if victim:
                rs.kill(victim)
            assert rs.serve("/data/f.dat", token=token) == b"payload"

    def test_permission_errors_do_not_fail_over(self):
        rs, _tm, _clock = self.make_set()
        rs.dl_link("/data/f.dat", read_db=True, write_blocked=True, recovery=True)
        rs.pump()
        with pytest.raises(PermissionDeniedError):
            rs.serve("/data/f.dat")  # no token
        assert rs.failovers == 0  # denial is final, not retried elsewhere

    def test_missing_everywhere_raises_not_found(self):
        rs, _tm, _clock = self.make_set()
        with pytest.raises(FileNotFoundOnServer):
            rs.serve("/data/absent.dat")

    def test_lagging_replica_read_falls_through(self):
        """A file on the primary but not yet replicated is still served
        when the read lands on a lagging follower first."""
        rs, _tm, _clock = self.make_set()
        rs.put("/data/new.dat", b"fresh")  # not pumped yet
        rs.replicas.reverse()  # force a lagging follower to the front
        assert rs.serve("/data/new.dat") == b"fresh"

    def test_unreachable_replica_marked_down_passively(self):
        rs, _tm, _clock = self.make_set()
        rs.kill(rs.primary.host)
        killed = rs.replica(rs.replicas[0].host)
        for _ in range(5):
            rs.serve("/data/f.dat")
        assert killed.status == "down"

    def test_promote_changes_primary(self):
        rs, _tm, _clock = self.make_set()
        target = rs.followers[0].host
        rs.promote(target)
        assert rs.primary.host == target
        rs.put("/data/p.dat", b"new-primary")
        assert rs.primary.server.filesystem.exists("/data/p.dat")


class TestHealthMonitor:
    def make(self, **kwargs):
        clock = FakeClock()
        rs = ReplicaSet("logical.host", make_servers(2), time_source=clock)
        monitor = HealthMonitor(**kwargs)
        return rs, monitor

    def test_healthy_probes_stay_up(self):
        rs, monitor = self.make()
        assert monitor.probe_set(rs) == {
            "phys0.example.org": "up", "phys1.example.org": "up",
        }

    def test_suspect_then_down(self):
        rs, monitor = self.make(suspect_after=1, down_after=3)
        victim = rs.followers[0]
        victim.killed = True
        victim.status = "up"  # reset the kill()-free path
        assert monitor.probe(rs, victim) == "suspect"
        assert monitor.probe(rs, victim) == "suspect"
        assert monitor.probe(rs, victim) == "down"
        assert monitor.transitions == 2

    def test_recovery_resets_to_up(self):
        rs, monitor = self.make()
        victim = rs.followers[0]
        victim.killed = True
        for _ in range(3):
            monitor.probe(rs, victim)
        victim.killed = False
        assert monitor.probe(rs, victim) == "up"
        assert victim.consecutive_failures == 0

    def test_slow_link_marks_suspect_not_down(self):
        rs, monitor = self.make(latency_suspect_s=0.2)
        monitor.latency_probe = lambda replica: 0.5  # always slow
        assert monitor.probe(rs, rs.followers[0]) == "suspect"
        # slowness never escalates to down, however long it lasts
        for _ in range(5):
            assert monitor.probe(rs, rs.followers[0]) == "suspect"


class TestNetsimIntegration:
    def make(self):
        clock = FakeClock()
        linker = DataLinker(
            TokenManager(secret=b"s", validity_seconds=60, time_source=clock)
        )
        manager = ReplicationManager(linker, replication_factor=2,
                                     time_source=clock)
        rs = manager.create_replica_set("fs1.soton.ac.uk", make_servers(3))
        network = Network()
        network.add_host(Host("southampton", role="db_server"))
        for replica in rs.replicas:
            network.add_host(Host(replica.host, role="file_server"))
        manager.attach_network(network, "southampton")
        return manager, rs, network, clock

    def test_partition_blocks_replication(self):
        manager, rs, network, _clock = self.make()
        follower = rs.followers[0]
        network.partition("southampton", follower.host)
        rs.put("/a", b"1")
        manager.pump(force=True)
        assert rs.queue.lag(follower) == 1
        network.heal("southampton", follower.host)
        manager.pump(force=True)
        assert rs.queue.lag(follower) == 0

    def test_partitioned_primary_fails_over_reads(self):
        manager, rs, network, _clock = self.make()
        rs.put("/a", b"1")
        manager.drain()
        network.partition("southampton", rs.primary.host)
        assert rs.serve("/a") == b"1"
        assert rs.failovers == 1

    def test_health_monitor_sees_partition(self):
        manager, rs, network, _clock = self.make()
        victim = rs.followers[0]
        network.partition("southampton", victim.host)
        for _ in range(manager.health.down_after):
            manager.pump()
        assert victim.status == "down"
        network.heal_all()
        manager.pump()
        assert victim.status == "up"

    def test_downed_host_unreachable_from_everywhere(self):
        manager, rs, network, _clock = self.make()
        rs.put("/a", b"1")
        manager.drain()
        network.set_host_down(rs.primary.host)
        assert rs.serve("/a") == b"1"
        assert rs.failovers == 1

    def test_slow_link_demotes_to_suspect(self):
        from repro.netsim.bandwidth import paper_profile

        manager, rs, network, _clock = self.make()
        rs.put("/a", b"1")
        manager.drain()
        manager.health.latency_suspect_s = 0.2
        network.set_default_profile(paper_profile("to_southampton"))
        network.set_latency("southampton", rs.primary.host, 0.5)
        manager.pump()
        assert rs.primary.status == "suspect"
        # reads now prefer the healthy follower
        assert rs.serve("/a") == b"1"
        assert rs.failovers == 1


class TestAntiEntropyRepair:
    def make_set(self):
        clock = FakeClock()
        rs = ReplicaSet("logical.host", make_servers(2), time_source=clock)
        rs.put("/data/a.dat", b"alpha")
        rs.put("/data/b.dat", b"beta")
        rs.dl_link("/data/a.dat", read_db=True, write_blocked=True, recovery=True)
        rs.pump()
        assert check_replica_set(rs).consistent
        return rs

    def test_clean_set_reports_consistent(self):
        rs = self.make_set()
        report = check_replica_set(rs)
        assert report.consistent
        assert report.files_checked == 2

    def test_tampered_bytes_detected_and_fixed(self):
        rs = self.make_set()
        follower = rs.followers[0]
        follower.server.filesystem.dl_put("/data/a.dat", b"bit-rot")
        report = repair_replica_set(rs)
        assert [f.kind for f in report.findings] == ["checksum_mismatch"]
        assert follower.server.filesystem.read("/data/a.dat") == b"alpha"
        assert check_replica_set(rs).consistent

    def test_missing_file_resynced(self):
        rs = self.make_set()
        follower = rs.followers[0]
        follower.server.filesystem.dl_remove("/data/b.dat")
        report = repair_replica_set(rs)
        assert [f.kind for f in report.findings] == ["missing"]
        assert follower.server.filesystem.read("/data/b.dat") == b"beta"
        assert check_replica_set(rs).consistent

    def test_stale_flags_fixed(self):
        rs = self.make_set()
        follower = rs.followers[0]
        follower.server.filesystem.dl_set_flags(
            "/data/a.dat", linked=False, read_db=False,
            write_blocked=False, recovery=False,
        )
        report = repair_replica_set(rs)
        assert [f.kind for f in report.findings] == ["stale_flags"]
        entry = follower.server.filesystem.entry("/data/a.dat")
        assert entry.linked and entry.read_db and entry.recovery
        assert check_replica_set(rs).consistent

    def test_extra_file_reported_not_deleted_by_default(self):
        rs = self.make_set()
        follower = rs.followers[0]
        follower.server.filesystem.dl_put("/data/ghost.dat", b"?")
        report = repair_replica_set(rs)
        assert [f.kind for f in report.findings] == ["extra"]
        assert follower.server.filesystem.exists("/data/ghost.dat")
        report = repair_replica_set(rs, prune=True)
        assert not follower.server.filesystem.exists("/data/ghost.dat")
        assert check_replica_set(rs).consistent

    def test_repair_fast_forwards_queue(self):
        """A repaired follower does not replay its stale backlog."""
        rs = self.make_set()
        follower = rs.followers[0]
        rs.kill(follower.host)
        rs.put("/data/c.dat", b"gamma")
        rs.revive(follower.host)
        repair_replica_set(rs)
        assert rs.queue.lag(follower) == 0
        assert follower.server.filesystem.read("/data/c.dat") == b"gamma"

    def test_unreachable_follower_skipped(self):
        rs = self.make_set()
        rs.kill(rs.followers[0].host)
        report = check_replica_set(rs)
        assert [f.kind for f in report.findings] == ["unreachable"]
        assert report.replicas_checked == 0


class TestCrashRecoveryWithReplication:
    def test_crash_mid_apply_then_repair_converges(self, tmp_path):
        """A crash between applying ops (existing datalink.apply.after_op
        crash point) leaves the primary ahead of the followers; recovery
        plus an anti-entropy pass restores a checksum-clean set."""
        clock = FakeClock()
        tm = TokenManager(secret=b"s", validity_seconds=60, time_source=clock)
        linker = DataLinker(tm)
        manager = ReplicationManager(linker, replication_factor=2,
                                     time_source=clock)
        rs = manager.create_replica_set("fs1.soton.ac.uk", make_servers(2))
        rs.put("/data/a.dat", b"a")
        rs.put("/data/b.dat", b"b")
        db = Database(str(tmp_path), sync=True)
        db.set_datalink_hooks(linker)
        db.execute(DATALINK_DDL)

        # inject_crash swallows the simulated death itself; the commit's
        # WAL record is durable but only the first link op was applied
        with faultinject.inject_crash("datalink.apply.after_op"):
            db.execute("BEGIN")
            db.execute(
                "INSERT INTO RESULT_FILE VALUES "
                "('a', 'http://fs1.soton.ac.uk/data/a.dat')"
            )
            db.execute(
                "INSERT INTO RESULT_FILE VALUES "
                "('b', 'http://fs1.soton.ac.uk/data/b.dat')"
            )
            db.execute("COMMIT")

        # simulated restart: reopen from disk, recover, repair replicas
        db2 = Database(str(tmp_path), sync=True)
        linker.recover(db2)
        db2.set_datalink_hooks(linker)
        manager.drain()
        for report in manager.repair():
            assert check_replica_set(manager.replica_set(report.host)).consistent
        for replica in rs.replicas:
            entry = replica.server.filesystem.entry("/data/a.dat")
            assert entry.linked

    def test_faultinject_registry_untouched(self):
        """Replication adds no new crash points — the closed registry
        guarded by test_crash_matrix stays exactly as it was."""
        assert "replication" not in " ".join(faultinject.CRASH_POINTS)


class TestReplicationManager:
    def test_status_shape(self):
        clock = FakeClock()
        linker = DataLinker()
        manager = ReplicationManager(linker, replication_factor=2,
                                     time_source=clock)
        rs = manager.create_replica_set("fs1.soton.ac.uk", make_servers(3))
        rs.put("/a", b"1")
        status = manager.status()
        assert status["replication_factor"] == 2
        assert status["max_lag"] == 1
        set_status = status["sets"]["fs1.soton.ac.uk"]
        assert set_status["replicas"][0]["role"] == "primary"
        assert len(set_status["replicas"]) == 2
        manager.drain()
        assert manager.status()["max_lag"] == 0
        assert "fs1.soton.ac.uk" in manager.describe()

    def test_linker_routes_logical_host_to_set(self):
        linker = DataLinker()
        manager = ReplicationManager(linker, replication_factor=2)
        rs = manager.create_replica_set("fs1.soton.ac.uk", make_servers(2))
        assert linker.server("fs1.soton.ac.uk") is rs
        assert linker.replication is manager

    def test_duplicate_set_rejected(self):
        manager = ReplicationManager(DataLinker(), replication_factor=2)
        manager.create_replica_set("fs1", make_servers(2))
        with pytest.raises(ReplicationError):
            manager.create_replica_set("fs1", make_servers(2, prefix="other"))

    def test_background_pump_thread(self):
        import time as _time

        linker = DataLinker()
        manager = ReplicationManager(linker, replication_factor=2)
        rs = manager.create_replica_set("fs1", make_servers(2))
        manager.start(interval=0.005)
        try:
            rs.put("/a", b"1")
            deadline = _time.time() + 5.0
            while rs.queue.max_lag() and _time.time() < deadline:
                _time.sleep(0.005)
            assert rs.queue.max_lag() == 0
        finally:
            manager.stop()
        assert manager._pump_thread is None


class TestWebFailoverAcceptance:
    """The issue's acceptance scenario, end to end through the portal."""

    @pytest.fixture
    def portal(self):
        from repro import EasiaApp
        from repro.turbulence import build_turbulence_archive

        archive = build_turbulence_archive(
            n_simulations=1, timesteps=2, replication_factor=2
        )
        engine = archive.make_engine(tempfile.mkdtemp(prefix="easia-repl-"))
        app = EasiaApp(
            archive.db, archive.linker, archive.document, archive.users, engine
        )
        session = app.login("turbulence", "consortium")
        value = archive.db.execute(
            "SELECT DOWNLOAD_RESULT FROM RESULT_FILE"
        ).scalar()
        return archive, app, session, value.url

    def test_archive_starts_lag_free(self, portal):
        archive, _app, _session, _url = portal
        assert archive.replication is not None
        for rs in archive.servers:
            assert rs.queue.max_lag() == 0
            assert check_replica_set(rs).consistent

    def test_download_survives_replica_kill(self, portal):
        archive, app, session, url = portal
        response = app.get("/download", {"url": url}, session_id=session)
        assert response.status == 200
        baseline = bytes(response.body)

        replica_set = archive.servers[0]
        replica_set.kill(replica_set.primary.host)
        response = app.get("/download", {"url": url}, session_id=session)
        assert response.status == 200  # zero user-visible errors
        assert bytes(response.body) == baseline
        assert replica_set.failovers >= 1

    def test_all_replicas_down_is_503(self, portal):
        archive, app, session, url = portal
        replica_set = archive.servers[0]
        for replica in list(replica_set.replicas):
            replica_set.kill(replica.host)
        response = app.get("/download", {"url": url}, session_id=session)
        assert response.status == 503

    def test_metrics_expose_replication(self, portal):
        archive, app, session, url = portal
        replica_set = archive.servers[0]
        replica_set.kill(replica_set.primary.host)
        app.get("/download", {"url": url}, session_id=session)
        text = app.get("/metrics", session_id=session).text
        assert "replication.max_lag" in text
        assert "replication.failovers.total" in text
        assert 'replication.queue.depth{set="fs1.soton.ac.uk"}' in text
        failovers = next(
            int(line.split()[-1]) for line in text.splitlines()
            if line.startswith("replication.failovers.total")
        )
        assert failovers >= 1

    def test_repair_after_tamper_via_manager(self, portal):
        archive, _app, _session, _url = portal
        replica_set = archive.servers[0]
        follower = replica_set.followers[0]
        path = next(iter(follower.server.manifest()))
        follower.server.filesystem.dl_put(path, b"flipped bits")
        reports = archive.replication.repair()
        fixed = [f for r in reports for f in r.findings]
        assert any(f.kind == "checksum_mismatch" for f in fixed)
        for rs in archive.servers:
            assert check_replica_set(rs).consistent


class TestReplicatedBackupRestore:
    """Satellite: backup reads from healthy replicas; restore verifies
    checksums and reports missing/corrupted image files."""

    def make_archive(self, tmp_path, replicated=True):
        clock = FakeClock()
        tm = TokenManager(secret=b"s", validity_seconds=60, time_source=clock)
        linker = DataLinker(tm)
        if replicated:
            manager = ReplicationManager(linker, replication_factor=2,
                                         time_source=clock)
            server = manager.create_replica_set(
                "fs1.soton.ac.uk", make_servers(2)
            )
        else:
            server = linker.register_server(FileServer("fs1.soton.ac.uk"))
        server.put("/data/a.dat", b"alpha")
        db = Database()
        db.set_datalink_hooks(linker)
        db.execute(DATALINK_DDL)
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('a', 'http://fs1.soton.ac.uk/data/a.dat')"
        )
        if replicated:
            server.drain()
        return db, linker, server

    def test_backup_records_checksums(self, tmp_path):
        db, linker, server = self.make_archive(tmp_path)
        manifest = coordinated_backup(db, linker, str(tmp_path / "bak"))
        entry = server.primary.server.filesystem.entry("/data/a.dat")
        assert manifest["files"][0]["sha256"] == entry.sha256

    def test_backup_survives_dead_primary(self, tmp_path):
        db, linker, server = self.make_archive(tmp_path)
        server.kill(server.primary.host)
        manifest = coordinated_backup(db, linker, str(tmp_path / "bak"))
        assert manifest["files"][0]["size"] == len(b"alpha")

    def test_restore_round_trip(self, tmp_path):
        db, linker, _server = self.make_archive(tmp_path, replicated=False)
        coordinated_backup(db, linker, str(tmp_path / "bak"))
        db2, linker2 = coordinated_restore(str(tmp_path / "bak"))
        assert db2.execute("SELECT COUNT(*) FROM RESULT_FILE").scalar() == 1
        restored = linker2.server("fs1.soton.ac.uk")
        assert restored.filesystem.read("/data/a.dat") == b"alpha"

    def test_restore_detects_corrupted_image_file(self, tmp_path):
        db, linker, _server = self.make_archive(tmp_path, replicated=False)
        coordinated_backup(db, linker, str(tmp_path / "bak"))
        stored = tmp_path / "bak" / "files" / "fs1.soton.ac.uk" / "data" / "a.dat"
        stored.write_bytes(b"rotten")
        with pytest.raises(RecoveryError, match="corrupted"):
            coordinated_restore(str(tmp_path / "bak"))

    def test_restore_detects_missing_image_file(self, tmp_path):
        db, linker, _server = self.make_archive(tmp_path, replicated=False)
        coordinated_backup(db, linker, str(tmp_path / "bak"))
        stored = tmp_path / "bak" / "files" / "fs1.soton.ac.uk" / "data" / "a.dat"
        stored.unlink()
        with pytest.raises(RecoveryError, match="missing"):
            coordinated_restore(str(tmp_path / "bak"))

    def test_restore_without_checksums_still_works(self, tmp_path):
        """Backward compatibility: pre-checksum images restore fine."""
        import json

        db, linker, _server = self.make_archive(tmp_path, replicated=False)
        coordinated_backup(db, linker, str(tmp_path / "bak"))
        manifest_path = tmp_path / "bak" / "backup_manifest.json"
        manifest = json.loads(manifest_path.read_text())
        for info in manifest["files"]:
            del info["sha256"]
        manifest_path.write_text(json.dumps(manifest))
        db2, _linker2 = coordinated_restore(str(tmp_path / "bak"))
        assert db2.execute("SELECT COUNT(*) FROM RESULT_FILE").scalar() == 1


class TestUnlinkListenerSnapshot:
    """Satellite: the unlink-listener list is snapshotted before
    iteration, so a listener removing itself cannot skip its peers."""

    def test_self_removing_listener_does_not_skip_next(self):
        clock = FakeClock()
        tm = TokenManager(secret=b"s", validity_seconds=60, time_source=clock)
        linker = DataLinker(tm)
        server = linker.register_server(FileServer("fs1.soton.ac.uk"))
        server.put("/data/a.dat", b"a")
        db = Database()
        db.set_datalink_hooks(linker)
        db.execute(DATALINK_DDL)
        db.execute(
            "INSERT INTO RESULT_FILE VALUES "
            "('a', 'http://fs1.soton.ac.uk/data/a.dat')"
        )

        calls = []

        def one_shot(host, path):
            calls.append(("one_shot", host, path))
            linker.unlink_listeners.remove(one_shot)

        def steady(host, path):
            calls.append(("steady", host, path))

        linker.unlink_listeners.extend([one_shot, steady])
        db.execute("DELETE FROM RESULT_FILE WHERE file_name = 'a'")
        # without the snapshot, one_shot's self-removal would shift the
        # list under the iterator and `steady` would never fire
        assert [name for name, _h, _p in calls] == ["one_shot", "steady"]
        assert linker.unlink_listeners == [steady]
