"""Tests for archiving operation outputs back into the archive."""

import pytest

from repro.errors import OperationError, UniqueViolation
from repro.operations import ResultArchiver
from repro.turbulence import build_turbulence_archive

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


@pytest.fixture(scope="module")
def archive():
    return build_turbulence_archive(n_simulations=1, timesteps=1, grid=10)


@pytest.fixture
def engine(archive, tmp_path):
    return archive.make_engine(str(tmp_path / "sb"))


@pytest.fixture
def archiver(archive):
    return ResultArchiver(archive.db, archive.linker)


class TestResultArchiver:
    def _run_getimage(self, engine, archive, slice_name="x1"):
        row = archive.result_rows()[0]
        result = engine.invoke(
            "GetImage", COLID, row, {"slice": slice_name, "type": "u"},
            use_cache=False,
        )
        return row, result

    def test_archives_output_as_datalink_row(self, engine, archive, archiver):
        row, result = self._run_getimage(engine, archive)
        sim = row["RESULT_FILE.SIMULATION_KEY"]
        value = archiver.archive(
            result, row[COLID], sim, vis_name="slice_u_x1.pgm"
        )
        # the row is queryable with a token-bearing datalink
        stored = archive.db.execute(
            "SELECT DOWNLOAD_VIS FROM VISUALISATION_FILE "
            "WHERE VIS_NAME = 'slice_u_x1.pgm'"
        ).scalar()
        assert stored.url == value.url
        assert stored.token is not None
        # and the bytes are retrievable through the datalink machinery
        assert archive.linker.download(stored) == result.outputs["slice.pgm"]

    def test_output_stays_on_dataset_server(self, engine, archive, archiver):
        row, result = self._run_getimage(engine, archive, "x2")
        sim = row["RESULT_FILE.SIMULATION_KEY"]
        value = archiver.archive(result, row[COLID], sim, vis_name="x2.pgm")
        assert value.host == row[COLID].host

    def test_file_is_link_controlled(self, engine, archive, archiver):
        from repro.errors import FileLockedError

        row, result = self._run_getimage(engine, archive, "x3")
        sim = row["RESULT_FILE.SIMULATION_KEY"]
        value = archiver.archive(result, row[COLID], sim, vis_name="x3.pgm")
        server = archive.linker.server(value.host)
        with pytest.raises(FileLockedError):
            server.filesystem.delete(value.server_path)

    def test_small_output_gets_blob_preview(self, engine, archive, archiver):
        row, result = self._run_getimage(engine, archive, "x4")
        sim = row["RESULT_FILE.SIMULATION_KEY"]
        archiver.archive(result, row[COLID], sim, vis_name="x4.pgm")
        preview = archive.db.execute(
            "SELECT PREVIEW FROM VISUALISATION_FILE WHERE VIS_NAME = 'x4.pgm'"
        ).scalar()
        assert preview is not None
        assert preview.mime_type == "image/x-portable-graymap"
        assert preview.data == result.outputs["slice.pgm"]

    def test_duplicate_name_rolls_back_cleanly(self, engine, archive, archiver):
        """A DB-level failure (duplicate VIS_NAME) must leave neither a
        dangling link nor a stray staged file on the server."""
        row, result = self._run_getimage(engine, archive, "x5")
        sim = row["RESULT_FILE.SIMULATION_KEY"]
        # occupy the VIS_NAME with an unrelated row (no datalink)
        archive.db.execute(
            "INSERT INTO VISUALISATION_FILE VALUES ('dup.pgm', ?, 'PGM', NULL, NULL)",
            (sim,),
        )
        server = archive.linker.server(row[COLID].host)
        files_before = len(server.filesystem)
        with pytest.raises(UniqueViolation):
            archiver.archive(result, row[COLID], sim, vis_name="dup.pgm")
        assert len(server.filesystem) == files_before

    def test_same_name_twice_blocked_by_link_control(self, engine, archive, archiver):
        """Re-archiving under an existing name hits the linked file's
        write protection before any database change."""
        from repro.errors import FileLockedError

        row, result = self._run_getimage(engine, archive, "x0")
        sim = row["RESULT_FILE.SIMULATION_KEY"]
        archiver.archive(result, row[COLID], sim, vis_name="twice.pgm")
        with pytest.raises(FileLockedError):
            archiver.archive(result, row[COLID], sim, vis_name="twice.pgm")

    def test_default_vis_name(self, engine, archive, archiver):
        row, result = self._run_getimage(engine, archive, "x6")
        sim = row["RESULT_FILE.SIMULATION_KEY"]
        value = archiver.archive(result, row[COLID], sim)
        assert "GetImage" in value.filename
        assert sim in value.filename

    def test_unknown_output_name(self, engine, archive, archiver):
        row, result = self._run_getimage(engine, archive, "x7")
        with pytest.raises(OperationError):
            archiver.archive(
                result, row[COLID], row["RESULT_FILE.SIMULATION_KEY"],
                output_name="nope.bin",
            )

    def test_archive_all(self, engine, archive, archiver):
        row = archive.result_rows()[0]
        result = engine.invoke("FieldStats", COLID, row, use_cache=False)
        sim = row["RESULT_FILE.SIMULATION_KEY"]
        values = archiver.archive_all(result, row[COLID], sim)
        assert len(values) == 1
        assert values[0].filename.endswith(".json")
        fmt = archive.db.execute(
            "SELECT FORMAT FROM VISUALISATION_FILE WHERE VIS_NAME = ?",
            (values[0].filename,),
        ).scalar()
        assert fmt == "JSON"
