"""Tests for engine extensions: subqueries, SQL/MED scalar functions,
and the queryable system catalog."""

import pytest

from repro.errors import CatalogError, SqlSyntaxError, TypeMismatchError
from repro.sqldb import Database, DatalinkValue


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE AUTHOR (k VARCHAR(5) PRIMARY KEY, name VARCHAR(20) NOT NULL)"
    )
    database.execute(
        "CREATE TABLE SIM (k VARCHAR(5) PRIMARY KEY, "
        "ak VARCHAR(5) REFERENCES AUTHOR (k), grid INTEGER)"
    )
    database.execute(
        "INSERT INTO AUTHOR VALUES ('A1','Mark'),('A2','Jasmin'),('A3','Denis')"
    )
    database.execute(
        "INSERT INTO SIM VALUES ('S1','A1',128),('S2','A2',64),('S3','A1',256)"
    )
    return database


class TestSubqueries:
    def test_in_subquery(self, db):
        rows = db.execute(
            "SELECT name FROM AUTHOR WHERE k IN "
            "(SELECT ak FROM SIM WHERE grid > 100) ORDER BY name"
        ).rows
        assert rows == [("Mark",)]

    def test_not_in_subquery(self, db):
        rows = db.execute(
            "SELECT name FROM AUTHOR WHERE k NOT IN (SELECT ak FROM SIM)"
        ).rows
        assert rows == [("Denis",)]

    def test_scalar_subquery_in_select_list(self, db):
        assert db.execute("SELECT (SELECT MAX(grid) FROM SIM)").scalar() == 256

    def test_scalar_subquery_in_where(self, db):
        rows = db.execute(
            "SELECT k FROM SIM WHERE grid = (SELECT MAX(grid) FROM SIM)"
        ).rows
        assert rows == [("S3",)]

    def test_scalar_subquery_empty_is_null(self, db):
        assert db.execute(
            "SELECT (SELECT grid FROM SIM WHERE k = 'NOPE')"
        ).scalar() is None

    def test_scalar_subquery_multiple_rows_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT (SELECT grid FROM SIM)")

    def test_scalar_subquery_multiple_columns_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT k FROM SIM WHERE grid = (SELECT grid, k FROM SIM)")

    def test_subquery_with_parameters(self, db):
        rows = db.execute(
            "SELECT name FROM AUTHOR WHERE k IN "
            "(SELECT ak FROM SIM WHERE grid > ?)",
            (200,),
        ).rows
        assert rows == [("Mark",)]

    def test_subquery_in_update(self, db):
        db.execute(
            "UPDATE SIM SET grid = 1 WHERE grid < (SELECT MAX(grid) FROM SIM)"
        )
        rows = db.execute("SELECT grid FROM SIM ORDER BY grid").rows
        assert rows == [(1,), (1,), (256,)]

    def test_subquery_in_delete(self, db):
        db.execute(
            "DELETE FROM SIM WHERE grid < (SELECT AVG(grid) FROM SIM)"
        )
        assert db.execute("SELECT COUNT(*) FROM SIM").scalar() == 1

    def test_nested_subqueries(self, db):
        rows = db.execute(
            "SELECT name FROM AUTHOR WHERE k IN ("
            "  SELECT ak FROM SIM WHERE grid = (SELECT MAX(grid) FROM SIM))"
        ).rows
        assert rows == [("Mark",)]

    def test_in_subquery_null_semantics(self, db):
        db.execute("INSERT INTO SIM VALUES ('S4', NULL, 32)")
        # NOT IN over a set containing NULL filters everything (UNKNOWN)
        rows = db.execute(
            "SELECT name FROM AUTHOR WHERE k NOT IN (SELECT ak FROM SIM)"
        ).rows
        assert rows == []

    def test_correlated_subquery_rejected_clearly(self, db):
        with pytest.raises(CatalogError):
            db.execute(
                "SELECT name FROM AUTHOR a WHERE 1 = "
                "(SELECT COUNT(*) FROM SIM WHERE ak = a.k)"
            )


class TestDatalinkScalarFunctions:
    @pytest.fixture
    def dldb(self):
        database = Database()
        database.execute("CREATE TABLE R (k INTEGER PRIMARY KEY, d DATALINK)")
        database.execute(
            "INSERT INTO R VALUES (1, 'http://fs1.soton.ac.uk/data/run/ts1.dat')"
        )
        return database

    def test_dlurlserver(self, dldb):
        assert dldb.execute("SELECT DLURLSERVER(d) FROM R").scalar() == (
            "fs1.soton.ac.uk"
        )

    def test_dlurlpath(self, dldb):
        assert dldb.execute("SELECT DLURLPATH(d) FROM R").scalar() == (
            "/data/run/ts1.dat"
        )

    def test_dlurlscheme(self, dldb):
        assert dldb.execute("SELECT DLURLSCHEME(d) FROM R").scalar() == "HTTP"

    def test_dllinktype(self, dldb):
        assert dldb.execute("SELECT DLLINKTYPE(d) FROM R").scalar() == "URL"

    def test_dlurlcomplete(self, dldb):
        assert dldb.execute("SELECT DLURLCOMPLETE(d) FROM R").scalar() == (
            "http://fs1.soton.ac.uk/data/run/ts1.dat"
        )

    def test_dlvalue_constructor(self, dldb):
        value = dldb.execute("SELECT DLVALUE('http://h/x/y.dat')").scalar()
        assert isinstance(value, DatalinkValue)
        assert value.filename == "y.dat"

    def test_dlvalue_in_insert(self, dldb):
        dldb.execute("INSERT INTO R VALUES (2, DLVALUE('http://h/a/b.dat'))")
        assert dldb.execute(
            "SELECT DLURLSERVER(d) FROM R WHERE k = 2"
        ).scalar() == "h"

    def test_functions_null_propagation(self, dldb):
        dldb.execute("INSERT INTO R VALUES (3, NULL)")
        assert dldb.execute(
            "SELECT DLURLPATH(d) FROM R WHERE k = 3"
        ).scalar() is None

    def test_functions_reject_non_datalink(self, dldb):
        with pytest.raises(TypeMismatchError):
            dldb.execute("SELECT DLURLSERVER(42)")

    def test_filter_by_server(self, dldb):
        dldb.execute("INSERT INTO R VALUES (2, 'http://fs2.other.org/f.dat')")
        rows = dldb.execute(
            "SELECT k FROM R WHERE DLURLSERVER(d) = 'fs1.soton.ac.uk'"
        ).rows
        assert rows == [(1,)]


class TestSystemCatalog:
    def test_systables(self, db):
        rows = db.execute(
            "SELECT TABLE_NAME, COLUMN_COUNT, ROW_COUNT FROM SYSTABLES "
            "ORDER BY TABLE_NAME"
        ).rows
        assert rows == [("AUTHOR", 2, 3), ("SIM", 3, 3)]

    def test_syscolumns(self, db):
        rows = db.execute(
            "SELECT COLUMN_NAME, TYPE_NAME, NULLABLE FROM SYSCOLUMNS "
            "WHERE TABLE_NAME = 'AUTHOR' ORDER BY ORDINAL"
        ).rows
        assert rows == [("K", "VARCHAR", False), ("NAME", "VARCHAR", False)]

    def test_syscolumns_datalink_flag(self, db):
        db.execute("CREATE TABLE R (k INTEGER PRIMARY KEY, d DATALINK)")
        assert db.execute(
            "SELECT IS_DATALINK FROM SYSCOLUMNS "
            "WHERE TABLE_NAME = 'R' AND COLUMN_NAME = 'D'"
        ).scalar() is True

    def test_sysforeignkeys(self, db):
        row = db.execute(
            "SELECT COLUMN_NAME, REF_TABLE, REF_COLUMN FROM SYSFOREIGNKEYS "
            "WHERE TABLE_NAME = 'SIM'"
        ).first()
        assert row == ("AK", "AUTHOR", "K")

    def test_syskeys(self, db):
        rows = db.execute(
            "SELECT TABLE_NAME, COLUMN_NAME FROM SYSKEYS "
            "WHERE CONSTRAINT_TYPE = 'PRIMARY' ORDER BY TABLE_NAME"
        ).rows
        assert rows == [("AUTHOR", "K"), ("SIM", "K")]

    def test_sysindexes(self, db):
        names = {
            r[0] for r in db.execute(
                "SELECT INDEX_NAME FROM SYSINDEXES WHERE TABLE_NAME = 'SIM'"
            ).rows
        }
        assert "PK_SIM" in names
        assert any(n.startswith("IX_SIM") for n in names)

    def test_reflects_live_changes(self, db):
        before = db.execute(
            "SELECT ROW_COUNT FROM SYSTABLES WHERE TABLE_NAME = 'AUTHOR'"
        ).scalar()
        db.execute("INSERT INTO AUTHOR VALUES ('A4', 'New')")
        after = db.execute(
            "SELECT ROW_COUNT FROM SYSTABLES WHERE TABLE_NAME = 'AUTHOR'"
        ).scalar()
        assert (before, after) == (3, 4)

    def test_joins_with_user_tables(self, db):
        # schema-driven tooling: which tables reference AUTHOR?
        rows = db.execute(
            "SELECT f.TABLE_NAME FROM SYSFOREIGNKEYS f WHERE f.REF_TABLE = 'AUTHOR'"
        ).rows
        assert rows == [("SIM",)]

    def test_read_only(self, db):
        for sql in (
            "INSERT INTO SYSTABLES VALUES ('X', 0, 0, '')",
            "DELETE FROM SYSCOLUMNS",
            "UPDATE SYSKEYS SET POSITION = 9",
            "DROP TABLE SYSTABLES",
            "CREATE INDEX IX_BAD ON SYSTABLES (TABLE_NAME)",
        ):
            with pytest.raises(CatalogError):
                db.execute(sql)

    def test_cannot_shadow_system_name(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE SYSCOLUMNS (x INTEGER)")

    def test_system_tables_not_in_user_listing(self, db):
        assert db.table_names() == ["AUTHOR", "SIM"]

    def test_not_in_generated_xuis(self, db):
        from repro.xuis import generate_default_xuis

        doc = generate_default_xuis(db)
        assert all(not t.name.startswith("SYS") for t in doc.tables)
