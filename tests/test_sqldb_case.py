"""Tests for CASE expressions and session expiry."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, g INTEGER)")
    database.execute(
        "INSERT INTO t VALUES (1, 64), (2, 128), (3, 256), (4, NULL)"
    )
    return database


class TestCaseExpression:
    def test_searched_case_branches(self, db):
        rows = db.execute(
            "SELECT k, CASE WHEN g >= 256 THEN 'large' "
            "WHEN g >= 128 THEN 'medium' ELSE 'small' END AS size "
            "FROM t ORDER BY k"
        ).rows
        assert rows == [
            (1, "small"), (2, "medium"), (3, "large"), (4, "small"),
        ]

    def test_first_true_branch_wins(self, db):
        value = db.execute(
            "SELECT CASE WHEN 1 = 1 THEN 'first' WHEN 1 = 1 THEN 'second' END"
        ).scalar()
        assert value == "first"

    def test_no_else_yields_null(self, db):
        assert db.execute(
            "SELECT CASE WHEN g > 1000 THEN 1 END FROM t WHERE k = 1"
        ).scalar() is None

    def test_null_coalescing_idiom(self, db):
        rows = db.execute(
            "SELECT CASE WHEN g IS NULL THEN -1 ELSE g END FROM t ORDER BY k"
        ).rows
        assert rows == [(64,), (128,), (256,), (-1,)]

    def test_conditional_aggregation(self, db):
        assert db.execute(
            "SELECT SUM(CASE WHEN g > 100 THEN 1 ELSE 0 END) FROM t"
        ).scalar() == 2

    def test_case_in_where(self, db):
        rows = db.execute(
            "SELECT k FROM t WHERE CASE WHEN g IS NULL THEN TRUE "
            "ELSE FALSE END"
        ).rows
        assert rows == [(4,)]

    def test_case_in_order_by(self, db):
        rows = db.execute(
            "SELECT k FROM t ORDER BY CASE WHEN g IS NULL THEN 0 ELSE g END"
        ).rows
        assert rows[0] == (4,)

    def test_nested_case(self, db):
        value = db.execute(
            "SELECT CASE WHEN 1 = 1 THEN "
            "CASE WHEN 2 = 2 THEN 'inner' END ELSE 'outer' END"
        ).scalar()
        assert value == "inner"

    def test_case_without_when_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT CASE ELSE 1 END")

    def test_unterminated_case_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT CASE WHEN 1 = 1 THEN 1")


class TestSessionExpiry:
    def _container(self, max_idle):
        from repro.web.http import ServletContainer

        clock = {"now": 1000.0}
        container = ServletContainer(
            session_max_idle=max_idle, time_source=lambda: clock["now"]
        )
        return container, clock

    def test_session_survives_within_idle_window(self):
        container, clock = self._container(60.0)
        session = container.sessions.create()
        clock["now"] += 59
        assert container.sessions.get(session.session_id) is session

    def test_session_expires_after_idle(self):
        container, clock = self._container(60.0)
        session = container.sessions.create()
        clock["now"] += 61
        assert container.sessions.get(session.session_id) is None

    def test_activity_refreshes_window(self):
        container, clock = self._container(60.0)
        session = container.sessions.create()
        for _ in range(5):
            clock["now"] += 50
            assert container.sessions.get(session.session_id) is session

    def test_no_expiry_by_default(self):
        from repro.web.http import ServletContainer

        container = ServletContainer()
        session = container.sessions.create()
        assert container.sessions.get(session.session_id) is session

    def test_expired_session_means_401(self, tmp_path):
        from repro import EasiaApp, build_turbulence_archive

        clock = {"now": 0.0}
        archive = build_turbulence_archive(n_simulations=1, timesteps=1, grid=8)
        engine = archive.make_engine(str(tmp_path / "sb"))
        app = EasiaApp(
            archive.db, archive.linker, archive.document, archive.users,
            engine, session_max_idle=30.0, time_source=lambda: clock["now"],
        )
        session = app.login("guest", "guest")
        assert app.get("/", session_id=session).ok
        clock["now"] += 31
        assert app.get("/", session_id=session).status == 401
