"""Integration tests for the Database facade: DDL, DML, SELECT."""

import pytest

from repro.errors import (
    CatalogError,
    CheckViolation,
    ForeignKeyViolation,
    NotNullViolation,
    SqlSyntaxError,
    TransactionError,
    TypeMismatchError,
    UniqueViolation,
)
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE AUTHOR (author_key VARCHAR(30) PRIMARY KEY, "
        "name VARCHAR(50) NOT NULL, email VARCHAR(60))"
    )
    database.execute(
        "CREATE TABLE SIMULATION ("
        " simulation_key VARCHAR(30) PRIMARY KEY,"
        " author_key VARCHAR(30) REFERENCES AUTHOR (author_key),"
        " title VARCHAR(100) NOT NULL,"
        " grid_size INTEGER CHECK (grid_size > 0),"
        " description CLOB)"
    )
    database.execute(
        "INSERT INTO AUTHOR VALUES "
        "('A1', 'Mark Papiani', 'papiani@computer.org'),"
        "('A2', 'Jasmin Wason', 'jlw98r@ecs.soton.ac.uk'),"
        "('A3', 'Denis Nicole', 'dan@ecs.soton.ac.uk')"
    )
    database.execute(
        "INSERT INTO SIMULATION VALUES "
        "('S1', 'A1', 'Turbulent channel flow', 128, 'channel flow at Re=180'),"
        "('S2', 'A1', 'Boundary layer', 256, NULL),"
        "('S3', 'A2', 'Pipe flow', 64, 'low Reynolds pipe')"
    )
    return database


class TestDdl:
    def test_create_and_list(self, db):
        assert db.table_names() == ["AUTHOR", "SIMULATION"]

    def test_duplicate_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE AUTHOR (x INTEGER)")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS AUTHOR (x INTEGER)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE SIMULATION")
        assert db.table_names() == ["AUTHOR"]

    def test_drop_referenced_table_blocked(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE AUTHOR")

    def test_drop_if_exists_missing(self, db):
        db.execute("DROP TABLE IF EXISTS NO_SUCH")

    def test_fk_must_reference_pk_or_unique(self, db):
        with pytest.raises(CatalogError):
            db.execute(
                "CREATE TABLE BAD (x VARCHAR(50) REFERENCES AUTHOR (name))"
            )

    def test_create_index_and_use(self, db):
        db.execute("CREATE INDEX IX_GRID ON SIMULATION (grid_size)")
        plan = db.explain("SELECT * FROM SIMULATION WHERE grid_size = 128")
        assert "IX_GRID" in plan

    def test_drop_index(self, db):
        db.execute("CREATE INDEX IX_GRID ON SIMULATION (grid_size)")
        db.execute("DROP INDEX IX_GRID")
        plan = db.explain("SELECT * FROM SIMULATION WHERE grid_size = 128")
        assert "seq scan" in plan


class TestInsert:
    def test_rowcount(self, db):
        result = db.execute("INSERT INTO AUTHOR VALUES ('A4', 'New', NULL)")
        assert result.rowcount == 1

    def test_multi_row(self, db):
        result = db.execute(
            "INSERT INTO AUTHOR VALUES ('A4','a',NULL), ('A5','b',NULL)"
        )
        assert result.rowcount == 2

    def test_column_list_fills_defaults(self, db):
        db.execute("INSERT INTO AUTHOR (author_key, name) VALUES ('A4', 'X')")
        row = db.execute(
            "SELECT email FROM AUTHOR WHERE author_key = 'A4'"
        ).first()
        assert row == (None,)

    def test_unknown_column_in_list(self, db):
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO AUTHOR (author_key, nope) VALUES ('A9', 'x')")

    def test_wrong_arity(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("INSERT INTO AUTHOR VALUES ('A9')")

    def test_not_null_enforced(self, db):
        with pytest.raises(NotNullViolation):
            db.execute("INSERT INTO AUTHOR VALUES ('A9', NULL, NULL)")

    def test_pk_duplicate(self, db):
        with pytest.raises(UniqueViolation):
            db.execute("INSERT INTO AUTHOR VALUES ('A1', 'dup', NULL)")

    def test_type_mismatch(self, db):
        with pytest.raises(TypeMismatchError):
            db.execute(
                "INSERT INTO SIMULATION VALUES ('S9','A1','t', 'not-a-number', NULL)"
            )

    def test_check_constraint(self, db):
        with pytest.raises(CheckViolation):
            db.execute(
                "INSERT INTO SIMULATION VALUES ('S9','A1','t', -5, NULL)"
            )

    def test_check_passes_on_null(self, db):
        # SQL: a CHECK evaluating to UNKNOWN does not fail.
        db.execute("INSERT INTO SIMULATION VALUES ('S9','A1','t', NULL, NULL)")

    def test_params(self, db):
        db.execute(
            "INSERT INTO AUTHOR VALUES (?, ?, ?)", ("A7", "Param Author", None)
        )
        assert db.execute(
            "SELECT name FROM AUTHOR WHERE author_key = ?", ("A7",)
        ).scalar() == "Param Author"


class TestForeignKeys:
    def test_insert_orphan_rejected(self, db):
        with pytest.raises(ForeignKeyViolation):
            db.execute("INSERT INTO SIMULATION VALUES ('S9','NOPE','t',1,NULL)")

    def test_null_fk_allowed(self, db):
        db.execute("INSERT INTO SIMULATION VALUES ('S9', NULL, 't', 1, NULL)")

    def test_delete_referenced_parent_blocked(self, db):
        with pytest.raises(ForeignKeyViolation):
            db.execute("DELETE FROM AUTHOR WHERE author_key = 'A1'")

    def test_delete_unreferenced_parent_ok(self, db):
        assert db.execute("DELETE FROM AUTHOR WHERE author_key = 'A3'").rowcount == 1

    def test_update_referenced_key_blocked(self, db):
        with pytest.raises(ForeignKeyViolation):
            db.execute("UPDATE AUTHOR SET author_key = 'AX' WHERE author_key = 'A1'")

    def test_update_unreferenced_key_ok(self, db):
        db.execute("UPDATE AUTHOR SET author_key = 'AX' WHERE author_key = 'A3'")
        assert db.execute(
            "SELECT COUNT(*) FROM AUTHOR WHERE author_key = 'AX'"
        ).scalar() == 1

    def test_update_child_to_orphan_rejected(self, db):
        with pytest.raises(ForeignKeyViolation):
            db.execute("UPDATE SIMULATION SET author_key = 'NOPE' WHERE simulation_key = 'S1'")

    def test_update_child_to_valid_parent(self, db):
        db.execute("UPDATE SIMULATION SET author_key = 'A3' WHERE simulation_key = 'S3'")
        assert db.execute(
            "SELECT author_key FROM SIMULATION WHERE simulation_key = 'S3'"
        ).scalar() == "A3"


class TestUpdateDelete:
    def test_update_rowcount(self, db):
        result = db.execute("UPDATE SIMULATION SET grid_size = grid_size * 2")
        assert result.rowcount == 3

    def test_update_with_where(self, db):
        db.execute("UPDATE SIMULATION SET title = 'Renamed' WHERE simulation_key = 'S1'")
        assert db.execute(
            "SELECT title FROM SIMULATION WHERE simulation_key = 'S1'"
        ).scalar() == "Renamed"

    def test_update_check_enforced(self, db):
        with pytest.raises(CheckViolation):
            db.execute("UPDATE SIMULATION SET grid_size = -1 WHERE simulation_key = 'S1'")

    def test_delete_rowcount(self, db):
        assert db.execute("DELETE FROM SIMULATION WHERE author_key = 'A1'").rowcount == 2

    def test_delete_all(self, db):
        db.execute("DELETE FROM SIMULATION")
        assert db.execute("SELECT COUNT(*) FROM SIMULATION").scalar() == 0


class TestSelect:
    def test_projection_and_filter(self, db):
        rows = db.execute(
            "SELECT title FROM SIMULATION WHERE grid_size > 100 ORDER BY title"
        ).rows
        assert rows == [("Boundary layer",), ("Turbulent channel flow",)]

    def test_star(self, db):
        result = db.execute("SELECT * FROM AUTHOR WHERE author_key = 'A1'")
        assert result.columns == ["AUTHOR_KEY", "NAME", "EMAIL"]

    def test_qualified_star(self, db):
        result = db.execute(
            "SELECT s.* FROM SIMULATION s JOIN AUTHOR a ON s.author_key = a.author_key"
        )
        assert result.columns[0] == "SIMULATION_KEY"

    def test_join(self, db):
        rows = db.execute(
            "SELECT a.name, s.title FROM SIMULATION s "
            "JOIN AUTHOR a ON s.author_key = a.author_key "
            "WHERE s.simulation_key = 'S3'"
        ).rows
        assert rows == [("Jasmin Wason", "Pipe flow")]

    def test_left_join_keeps_unmatched(self, db):
        db.execute("INSERT INTO SIMULATION VALUES ('S9', NULL, 'orphan', 1, NULL)")
        rows = db.execute(
            "SELECT s.simulation_key, a.name FROM SIMULATION s "
            "LEFT JOIN AUTHOR a ON s.author_key = a.author_key "
            "ORDER BY s.simulation_key"
        ).rows
        assert ("S9", None) in rows

    def test_implicit_join_with_where(self, db):
        rows = db.execute(
            "SELECT a.name FROM SIMULATION s, AUTHOR a "
            "WHERE s.author_key = a.author_key AND s.simulation_key = 'S1'"
        ).rows
        assert rows == [("Mark Papiani",)]

    def test_group_by_having(self, db):
        rows = db.execute(
            "SELECT author_key, COUNT(*) AS n FROM SIMULATION "
            "GROUP BY author_key HAVING COUNT(*) > 1"
        ).rows
        assert rows == [("A1", 2)]

    def test_aggregates_without_group(self, db):
        row = db.execute(
            "SELECT COUNT(*), MIN(grid_size), MAX(grid_size), AVG(grid_size), SUM(grid_size) "
            "FROM SIMULATION"
        ).first()
        assert row == (3, 64, 256, (128 + 256 + 64) / 3, 448)

    def test_aggregate_on_empty_table(self, db):
        db.execute("DELETE FROM SIMULATION")
        assert db.execute("SELECT COUNT(*) FROM SIMULATION").first() == (0,)
        assert db.execute("SELECT MAX(grid_size) FROM SIMULATION").first() == (None,)

    def test_count_ignores_nulls(self, db):
        assert db.execute("SELECT COUNT(description) FROM SIMULATION").scalar() == 2

    def test_distinct(self, db):
        rows = db.execute(
            "SELECT DISTINCT author_key FROM SIMULATION ORDER BY author_key"
        ).rows
        assert rows == [("A1",), ("A2",)]

    def test_order_by_desc_nulls(self, db):
        db.execute("INSERT INTO SIMULATION VALUES ('S9', NULL, 'x', NULL, NULL)")
        rows = db.execute(
            "SELECT simulation_key FROM SIMULATION ORDER BY grid_size"
        ).rows
        assert rows[0] == ("S9",)  # NULLs sort first ascending

    def test_limit_offset(self, db):
        rows = db.execute(
            "SELECT simulation_key FROM SIMULATION ORDER BY simulation_key "
            "LIMIT 1 OFFSET 1"
        ).rows
        assert rows == [("S2",)]

    def test_like(self, db):
        rows = db.execute(
            "SELECT name FROM AUTHOR WHERE name LIKE '%Wason'"
        ).rows
        assert rows == [("Jasmin Wason",)]

    def test_in(self, db):
        assert len(db.execute(
            "SELECT * FROM AUTHOR WHERE author_key IN ('A1','A2')"
        )) == 2

    def test_between(self, db):
        rows = db.execute(
            "SELECT simulation_key FROM SIMULATION WHERE grid_size BETWEEN 100 AND 300 "
            "ORDER BY simulation_key"
        ).rows
        assert rows == [("S1",), ("S2",)]

    def test_is_null(self, db):
        assert db.execute(
            "SELECT simulation_key FROM SIMULATION WHERE description IS NULL"
        ).rows == [("S2",)]

    def test_expression_select_items(self, db):
        row = db.execute(
            "SELECT grid_size * grid_size AS area, UPPER(title) "
            "FROM SIMULATION WHERE simulation_key = 'S3'"
        ).first()
        assert row == (64 * 64, "PIPE FLOW")

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 2").scalar() == 3

    def test_scalar_of_empty(self, db):
        assert db.execute("SELECT * FROM AUTHOR WHERE author_key = 'ZZ'").scalar() is None

    def test_dicts(self, db):
        d = db.execute("SELECT name FROM AUTHOR WHERE author_key = 'A1'").dicts()
        assert d == [{"NAME": "Mark Papiani"}]

    def test_pk_lookup_uses_index(self, db):
        plan = db.explain("SELECT * FROM SIMULATION WHERE simulation_key = 'S1'")
        assert "PK_SIMULATION" in plan

    def test_join_uses_index(self, db):
        plan = db.explain(
            "SELECT * FROM SIMULATION s JOIN AUTHOR a ON s.author_key = a.author_key"
        )
        assert "index nested-loop join" in plan

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM NO_SUCH")

    def test_unknown_column(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT nope FROM AUTHOR")

    def test_order_by_alias(self, db):
        rows = db.execute(
            "SELECT author_key, COUNT(*) AS n FROM SIMULATION "
            "GROUP BY author_key ORDER BY n DESC, author_key"
        ).rows
        assert rows == [("A1", 2), ("A2", 1)]


class TestTransactions:
    def test_commit_persists(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO AUTHOR VALUES ('A8', 'In Txn', NULL)")
        db.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM AUTHOR").scalar() == 4

    def test_rollback_undoes_insert(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO AUTHOR VALUES ('A8', 'In Txn', NULL)")
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM AUTHOR").scalar() == 3

    def test_rollback_undoes_update_and_delete(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE AUTHOR SET name = 'Changed' WHERE author_key = 'A3'")
        db.execute("DELETE FROM SIMULATION WHERE simulation_key = 'S3'")
        db.execute("ROLLBACK")
        assert db.execute(
            "SELECT name FROM AUTHOR WHERE author_key = 'A3'"
        ).scalar() == "Denis Nicole"
        assert db.execute("SELECT COUNT(*) FROM SIMULATION").scalar() == 3

    def test_rollback_restores_indexes(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM SIMULATION WHERE simulation_key = 'S3'")
        db.execute("ROLLBACK")
        # PK index must contain S3 again: re-insert collides.
        with pytest.raises(UniqueViolation):
            db.execute("INSERT INTO SIMULATION VALUES ('S3','A2','x',1,NULL)")

    def test_context_manager_commit_and_rollback(self, db):
        with db.transaction():
            db.execute("INSERT INTO AUTHOR VALUES ('A8', 'ctx', NULL)")
        assert db.execute("SELECT COUNT(*) FROM AUTHOR").scalar() == 4
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO AUTHOR VALUES ('A9', 'doomed', NULL)")
                raise RuntimeError("boom")
        assert db.execute("SELECT COUNT(*) FROM AUTHOR").scalar() == 4

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")
        db.execute("ROLLBACK")

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.execute("COMMIT")

    def test_failed_statement_in_txn_leaves_txn_open(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO AUTHOR VALUES ('A8', 'keep', NULL)")
        with pytest.raises(UniqueViolation):
            db.execute("INSERT INTO AUTHOR VALUES ('A1', 'dup', NULL)")
        db.execute("COMMIT")
        # Partial-statement effects of the failed insert must not persist,
        # but the earlier insert must.
        assert db.execute("SELECT COUNT(*) FROM AUTHOR").scalar() == 4

    def test_multi_row_insert_is_atomic_in_autocommit(self, db):
        with pytest.raises(UniqueViolation):
            db.execute(
                "INSERT INTO AUTHOR VALUES ('A8','ok',NULL), ('A1','dup',NULL)"
            )
        assert db.execute("SELECT COUNT(*) FROM AUTHOR").scalar() == 3

    def test_drop_table_inside_txn_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("DROP TABLE SIMULATION")
        db.execute("ROLLBACK")
