"""Unit tests for expression evaluation (SQL three-valued logic)."""

import datetime as dt

import pytest

from repro.errors import CatalogError, SqlSyntaxError, TypeMismatchError
from repro.sqldb.expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Parameter,
    Star,
    UnaryOp,
    truthy,
)
from repro.sqldb.types import Blob, Clob, DatalinkValue


def lit(value):
    return Literal(value)


class TestNullPropagation:
    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/"])
    def test_null_operand_yields_null(self, op):
        assert BinaryOp(op, lit(None), lit(1)).evaluate({}) is None
        assert BinaryOp(op, lit(1), lit(None)).evaluate({}) is None

    def test_not_null_is_null(self):
        assert UnaryOp("NOT", lit(None)).evaluate({}) is None

    def test_truthy_rejects_null_and_false(self):
        assert truthy(True)
        assert not truthy(None)
        assert not truthy(False)


class TestKleeneLogic:
    def test_and_table(self):
        cases = [
            (True, True, True),
            (True, False, False),
            (False, None, False),
            (None, False, False),
            (True, None, None),
            (None, None, None),
        ]
        for a, b, expected in cases:
            assert BinaryOp("AND", lit(a), lit(b)).evaluate({}) is expected

    def test_or_table(self):
        cases = [
            (False, False, False),
            (True, None, True),
            (None, True, True),
            (False, None, None),
            (None, None, None),
        ]
        for a, b, expected in cases:
            assert BinaryOp("OR", lit(a), lit(b)).evaluate({}) is expected

    def test_and_short_circuits(self):
        # Right side would raise if evaluated.
        boom = FunctionCall("UNDEFINED_FN", [])
        assert BinaryOp("AND", lit(False), boom).evaluate({}) is False
        assert BinaryOp("OR", lit(True), boom).evaluate({}) is True


class TestComparisons:
    def test_numeric_cross_type(self):
        assert BinaryOp("=", lit(1), lit(1.0)).evaluate({}) is True

    def test_string(self):
        assert BinaryOp("<", lit("abc"), lit("abd")).evaluate({}) is True

    def test_char_padding_ignored(self):
        assert BinaryOp("=", lit("ab   "), lit("ab")).evaluate({}) is True

    def test_date_vs_string(self):
        assert BinaryOp(
            ">", lit(dt.date(2000, 6, 1)), lit("2000-01-01")
        ).evaluate({}) is True

    def test_date_vs_datetime(self):
        assert BinaryOp(
            "=", lit(dt.date(2000, 1, 1)), lit(dt.datetime(2000, 1, 1))
        ).evaluate({}) is True

    def test_clob_compares_as_text(self):
        assert BinaryOp("=", lit(Clob("x")), lit("x")).evaluate({}) is True

    def test_datalink_compares_by_url(self):
        a = DatalinkValue("http://h/d/f.dat")
        assert BinaryOp("=", lit(a), lit(a.with_token("t"))).evaluate({}) is True

    def test_blob_compares_by_bytes(self):
        assert BinaryOp("=", lit(Blob(b"x")), lit(Blob(b"x"))).evaluate({}) is True

    def test_incomparable_raises(self):
        with pytest.raises(TypeMismatchError):
            BinaryOp("<", lit("abc"), lit(5)).evaluate({})


class TestArithmetic:
    def test_integer_division_stays_integral(self):
        assert BinaryOp("/", lit(6), lit(3)).evaluate({}) == 2
        assert isinstance(BinaryOp("/", lit(6), lit(3)).evaluate({}), int)

    def test_fractional_division(self):
        assert BinaryOp("/", lit(7), lit(2)).evaluate({}) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(TypeMismatchError):
            BinaryOp("/", lit(1), lit(0)).evaluate({})

    def test_modulo(self):
        assert BinaryOp("%", lit(7), lit(3)).evaluate({}) == 1

    def test_unary_minus(self):
        assert UnaryOp("-", lit(5)).evaluate({}) == -5

    def test_arith_on_string_raises(self):
        with pytest.raises(TypeMismatchError):
            BinaryOp("+", lit("a"), lit(1)).evaluate({})

    def test_concat(self):
        assert BinaryOp("||", lit("a"), lit(1)).evaluate({}) == "a1"


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("Mark Papiani", "Mark%", True),
            ("Mark Papiani", "%Papiani", True),
            ("Mark Papiani", "%api%", True),
            ("Mark", "M_rk", True),
            ("Mark", "m_rk", False),  # LIKE is case-sensitive
            ("50 + 50%", "50 + 50\\%", False),  # no escape support: literal backslash
            ("abc", "abc", True),
            ("abc", "ab", False),
            ("a.c", "a.c", True),  # regex metachars are escaped
            ("axc", "a.c", False),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert Like(lit(value), lit(pattern)).evaluate({}) is expected

    def test_null_pattern(self):
        assert Like(lit("x"), lit(None)).evaluate({}) is None

    def test_negated(self):
        assert Like(lit("abc"), lit("z%"), negated=True).evaluate({}) is True


class TestInBetween:
    def test_in_hit_and_miss(self):
        assert InList(lit(2), [lit(1), lit(2)]).evaluate({}) is True
        assert InList(lit(3), [lit(1), lit(2)]).evaluate({}) is False

    def test_in_with_null_member_is_unknown_on_miss(self):
        assert InList(lit(3), [lit(1), lit(None)]).evaluate({}) is None
        assert InList(lit(1), [lit(1), lit(None)]).evaluate({}) is True

    def test_not_in(self):
        assert InList(lit(3), [lit(1)], negated=True).evaluate({}) is True

    def test_between(self):
        assert Between(lit(5), lit(1), lit(10)).evaluate({}) is True
        assert Between(lit(0), lit(1), lit(10)).evaluate({}) is False
        assert Between(lit(5), lit(1), lit(10), negated=True).evaluate({}) is False

    def test_between_null(self):
        assert Between(lit(None), lit(1), lit(2)).evaluate({}) is None


class TestIsNull:
    def test_is_null(self):
        assert IsNull(lit(None)).evaluate({}) is True
        assert IsNull(lit(0)).evaluate({}) is False

    def test_is_not_null(self):
        assert IsNull(lit(0), negated=True).evaluate({}) is True


class TestFunctions:
    def test_upper_lower(self):
        assert FunctionCall("UPPER", [lit("abc")]).evaluate({}) == "ABC"
        assert FunctionCall("LOWER", [lit("ABC")]).evaluate({}) == "abc"

    def test_length_of_string_and_lobs(self):
        assert FunctionCall("LENGTH", [lit("abcd")]).evaluate({}) == 4
        assert FunctionCall("LENGTH", [lit(Blob(b"12345"))]).evaluate({}) == 5
        assert FunctionCall("LENGTH", [lit(Clob("123"))]).evaluate({}) == 3

    def test_substr(self):
        assert FunctionCall("SUBSTR", [lit("turbulence"), lit(1), lit(4)]).evaluate({}) == "turb"
        assert FunctionCall("SUBSTR", [lit("turbulence"), lit(5)]).evaluate({}) == "ulence"

    def test_coalesce(self):
        assert FunctionCall("COALESCE", [lit(None), lit(None), lit(3)]).evaluate({}) == 3
        assert FunctionCall("COALESCE", [lit(None)]).evaluate({}) is None

    def test_round_abs_trim(self):
        assert FunctionCall("ROUND", [lit(2.567), lit(1)]).evaluate({}) == 2.6
        assert FunctionCall("ABS", [lit(-4)]).evaluate({}) == 4
        assert FunctionCall("TRIM", [lit("  x ")]).evaluate({}) == "x"

    def test_null_argument_propagates(self):
        assert FunctionCall("UPPER", [lit(None)]).evaluate({}) is None

    def test_unknown_function(self):
        with pytest.raises(SqlSyntaxError):
            FunctionCall("NO_SUCH", [lit(1)]).evaluate({})


class TestColumnRefs:
    def test_qualified_lookup(self):
        env = {"T.A": 7}
        assert ColumnRef("a", "t").evaluate(env) == 7

    def test_unqualified_lookup(self):
        assert ColumnRef("a").evaluate({"A": 3}) == 3

    def test_qualified_never_falls_back_to_bare(self):
        # A wrong qualifier must error, not silently bind another column.
        with pytest.raises(CatalogError):
            ColumnRef("a", "t").evaluate({"A": 3})

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            ColumnRef("missing").evaluate({})

    def test_column_refs_collection(self):
        expr = BinaryOp("AND",
                        BinaryOp("=", ColumnRef("a"), lit(1)),
                        Like(ColumnRef("b", "t"), lit("%")))
        refs = {r.key for r in expr.column_refs()}
        assert refs == {"A", "T.B"}


class TestParameters:
    def test_binding(self):
        assert Parameter(1).evaluate({}, ("a", "b")) == "b"

    def test_missing_parameter(self):
        with pytest.raises(SqlSyntaxError):
            Parameter(2).evaluate({}, ("only",))


class TestAggregates:
    def test_accumulate(self):
        assert AggregateCall("COUNT", Star()).accumulate([1, 1, 1]) == 3
        assert AggregateCall("SUM", ColumnRef("x")).accumulate([1, 2, 3]) == 6
        assert AggregateCall("AVG", ColumnRef("x")).accumulate([2, 4]) == 3
        assert AggregateCall("MIN", ColumnRef("x")).accumulate([5, 2]) == 2
        assert AggregateCall("MAX", ColumnRef("x")).accumulate([5, 2]) == 5

    def test_empty_input(self):
        assert AggregateCall("COUNT", Star()).accumulate([]) == 0
        assert AggregateCall("SUM", ColumnRef("x")).accumulate([]) is None

    def test_distinct(self):
        agg = AggregateCall("COUNT", ColumnRef("x"), distinct=True)
        assert agg.accumulate([1, 1, 2]) == 2

    def test_unknown_aggregate(self):
        with pytest.raises(SqlSyntaxError):
            AggregateCall("MEDIAN", Star())

    def test_outside_group_context_raises(self):
        with pytest.raises(SqlSyntaxError):
            AggregateCall("COUNT", Star()).evaluate({})

    def test_contains_aggregate(self):
        expr = BinaryOp(">", AggregateCall("COUNT", Star()), lit(1))
        assert expr.contains_aggregate()
        assert not lit(1).contains_aggregate()
