"""Unit tests for the SQL lexer and parser."""

import datetime as dt

import pytest

from repro.errors import SqlSyntaxError
from repro.sqldb.expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Parameter,
    Star,
    UnaryOp,
)
from repro.sqldb.parser import parse_script, parse_sql, tokenize
from repro.sqldb.parser.ast_nodes import (
    BeginStmt,
    CommitStmt,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    RollbackStmt,
    SelectStmt,
    UpdateStmt,
)
from repro.sqldb.types import DatalinkType, VarcharType


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, b FROM t WHERE x = 1")
        kinds = [t.kind for t in tokens]
        assert kinds.count("IDENT") == 7
        assert kinds[-1] == "EOF"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'o''neill'")
        assert tokens[0].value == "o'neill"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n+ 2")
        values = [t.value for t in tokens if t.kind != "EOF"]
        assert values == ["SELECT", "1", "+", "2"]

    def test_block_comment_skipped(self):
        tokens = tokenize("1 /* in the middle */ 2")
        assert [t.value for t in tokens if t.kind != "EOF"] == ["1", "2"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("1 /* never ends")

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5E-2")
        assert [t.value for t in tokens if t.kind == "NUMBER"] == [
            "1", "2.5", "1e3", "2.5E-2",
        ]

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == "Weird Name"

    def test_two_char_operators(self):
        tokens = tokenize("a <> b <= c || d")
        ops = [t.value for t in tokens if t.kind == "OP"]
        assert ops == ["<>", "<=", "||"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")

    def test_param_token(self):
        tokens = tokenize("x = ?")
        assert any(t.kind == "PARAM" for t in tokens)


class TestCreateTable:
    def test_simple(self):
        stmt = parse_sql(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20) NOT NULL)"
        )
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.name == "T"
        assert stmt.primary_key == ("ID",)
        assert stmt.columns[1].nullable is False
        assert isinstance(stmt.columns[1].type, VarcharType)

    def test_table_level_constraints(self):
        stmt = parse_sql(
            """CREATE TABLE result_file (
                 file_name VARCHAR(40),
                 simulation_key VARCHAR(30),
                 PRIMARY KEY (file_name, simulation_key),
                 FOREIGN KEY (simulation_key) REFERENCES simulation (simulation_key),
                 UNIQUE (file_name),
                 CHECK (file_name <> '')
               )"""
        )
        assert stmt.primary_key == ("FILE_NAME", "SIMULATION_KEY")
        assert stmt.foreign_keys[0].ref_table == "SIMULATION"
        assert stmt.unique_sets == [("FILE_NAME",)]
        assert len(stmt.checks) == 1

    def test_inline_references(self):
        stmt = parse_sql(
            "CREATE TABLE s (k VARCHAR(10) PRIMARY KEY, "
            "a VARCHAR(10) REFERENCES author (author_key))"
        )
        fk = stmt.foreign_keys[0]
        assert fk.columns == ("A",)
        assert fk.ref_table == "AUTHOR"

    def test_datalink_full_options(self):
        stmt = parse_sql(
            "CREATE TABLE r (d DATALINK LINKTYPE URL FILE LINK CONTROL "
            "INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED "
            "RECOVERY YES ON UNLINK RESTORE)"
        )
        spec = stmt.columns[0].type.spec
        assert spec.link_control is True
        assert spec.integrity == "ALL"
        assert spec.read_permission == "DB"
        assert spec.write_permission == "BLOCKED"
        assert spec.recovery is True
        assert spec.on_unlink == "RESTORE"

    def test_datalink_no_link_control(self):
        stmt = parse_sql("CREATE TABLE r (d DATALINK LINKTYPE URL NO LINK CONTROL)")
        assert stmt.columns[0].type.spec.link_control is False

    def test_datalink_bare(self):
        stmt = parse_sql("CREATE TABLE r (d DATALINK)")
        assert isinstance(stmt.columns[0].type, DatalinkType)
        assert stmt.columns[0].type.spec.link_control is False

    def test_datalink_options_imply_control(self):
        stmt = parse_sql("CREATE TABLE r (d DATALINK READ PERMISSION DB)")
        assert stmt.columns[0].type.spec.link_control is True

    def test_default_values(self):
        stmt = parse_sql(
            "CREATE TABLE t (n INTEGER DEFAULT 3, s VARCHAR(5) DEFAULT 'ab', "
            "d DATE DEFAULT DATE '2000-01-01', neg INTEGER DEFAULT -1)"
        )
        assert stmt.columns[0].default == 3
        assert stmt.columns[1].default == "ab"
        assert stmt.columns[2].default == dt.date(2000, 1, 1)
        assert stmt.columns[3].default == -1

    def test_if_not_exists(self):
        stmt = parse_sql("CREATE TABLE IF NOT EXISTS t (x INTEGER)")
        assert stmt.if_not_exists is True

    def test_missing_type_is_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("CREATE TABLE t (x)")

    def test_duplicate_primary_key_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql(
                "CREATE TABLE t (x INTEGER PRIMARY KEY, y INTEGER, PRIMARY KEY (y))"
            )


class TestDml:
    def test_insert_positional(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns is None
        assert len(stmt.rows) == 2

    def test_insert_with_columns_and_params(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (?, ?)")
        assert stmt.columns == ["A", "B"]
        params = [e for row in stmt.rows for e in row]
        assert all(isinstance(e, Parameter) for e in params)
        assert [p.index for p in params] == [0, 1]

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = 1, b = b + 1 WHERE k = 'x'")
        assert isinstance(stmt, UpdateStmt)
        assert stmt.assignments[0][0] == "A"
        assert isinstance(stmt.assignments[1][1], BinaryOp)
        assert stmt.where is not None

    def test_delete_without_where(self):
        stmt = parse_sql("DELETE FROM t")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.where is None

    def test_drop_table(self):
        stmt = parse_sql("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTableStmt)
        assert stmt.if_exists

    def test_create_index(self):
        stmt = parse_sql("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert isinstance(stmt, CreateIndexStmt)
        assert stmt.unique
        assert stmt.columns == ("A", "B")


class TestSelect:
    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert stmt.items[0].is_star

    def test_qualified_star(self):
        stmt = parse_sql("SELECT t.* FROM t")
        assert stmt.items[0].star_table == "T"

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "X"
        assert stmt.items[1].alias == "Y"

    def test_joins(self):
        stmt = parse_sql(
            "SELECT * FROM a JOIN b ON a.k = b.k LEFT JOIN c ON b.k = c.k"
        )
        assert [j.kind for j in stmt.joins] == ["INNER", "LEFT"]

    def test_implicit_cross_join(self):
        stmt = parse_sql("SELECT * FROM a, b WHERE a.k = b.k")
        assert len(stmt.tables) == 2

    def test_group_having_order_limit(self):
        stmt = parse_sql(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1 "
            "ORDER BY n DESC, a ASC LIMIT 10 OFFSET 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_aggregates(self):
        stmt = parse_sql("SELECT COUNT(*), COUNT(DISTINCT a), SUM(b) FROM t")
        first = stmt.items[0].expr
        assert isinstance(first, AggregateCall)
        assert isinstance(first.arg, Star)
        assert stmt.items[1].expr.distinct is True

    def test_select_without_from(self):
        stmt = parse_sql("SELECT 1 + 1")
        assert stmt.tables == []

    def test_table_alias(self):
        stmt = parse_sql("SELECT s.title FROM simulation AS s")
        assert stmt.tables[0].alias == "S"


class TestExpressionsParsing:
    def test_precedence(self):
        stmt = parse_sql("SELECT 1 + 2 * 3")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        stmt = parse_sql("SELECT (1 + 2) * 3")
        assert stmt.items[0].expr.op == "*"

    def test_and_or_precedence(self):
        stmt = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_not(self):
        stmt = parse_sql("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, UnaryOp)

    def test_like(self):
        stmt = parse_sql("SELECT * FROM t WHERE name LIKE 'Mark%'")
        assert isinstance(stmt.where, Like)

    def test_not_like(self):
        stmt = parse_sql("SELECT * FROM t WHERE name NOT LIKE '%x%'")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse_sql("SELECT * FROM t WHERE k IN (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.items) == 3

    def test_between(self):
        stmt = parse_sql("SELECT * FROM t WHERE g BETWEEN 64 AND 256")
        assert isinstance(stmt.where, Between)

    def test_is_null_and_is_not_null(self):
        a = parse_sql("SELECT * FROM t WHERE x IS NULL").where
        b = parse_sql("SELECT * FROM t WHERE x IS NOT NULL").where
        assert isinstance(a, IsNull) and not a.negated
        assert isinstance(b, IsNull) and b.negated

    def test_function_call(self):
        stmt = parse_sql("SELECT UPPER(name) FROM t")
        assert isinstance(stmt.items[0].expr, FunctionCall)

    def test_qualified_column(self):
        stmt = parse_sql("SELECT t.a FROM t")
        ref = stmt.items[0].expr
        assert isinstance(ref, ColumnRef)
        assert ref.table == "T" and ref.column == "A"

    def test_literals(self):
        stmt = parse_sql("SELECT NULL, TRUE, FALSE, DATE '2000-01-01'")
        values = [item.expr.value for item in stmt.items]
        assert values == [None, True, False, dt.date(2000, 1, 1)]

    def test_string_concat(self):
        stmt = parse_sql("SELECT 'a' || 'b'")
        assert stmt.items[0].expr.op == "||"

    def test_dangling_not_is_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM t WHERE a NOT 5")


class TestTransactionsAndScripts:
    def test_txn_statements(self):
        assert isinstance(parse_sql("BEGIN"), BeginStmt)
        assert isinstance(parse_sql("COMMIT WORK"), CommitStmt)
        assert isinstance(parse_sql("ROLLBACK"), RollbackStmt)

    def test_script(self):
        stmts = parse_script(
            "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;"
        )
        assert len(stmts) == 3
        assert isinstance(stmts[2], SelectStmt)

    def test_trailing_garbage_is_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT 1 garbage garbage garbage FROM")

    def test_error_carries_position(self):
        try:
            parse_sql("SELECT FROM")
        except SqlSyntaxError as exc:
            assert exc.position is not None
        else:
            pytest.fail("expected SqlSyntaxError")

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("GRANT ALL ON t TO user")
