"""Unit tests for heaps, indexes and the Table storage wrapper."""

import pytest

from repro.errors import CatalogError, UniqueViolation
from repro.sqldb.schema import Column, TableSchema
from repro.sqldb.storage import HashIndex, Heap, SortedIndex, Table
from repro.sqldb.types import IntegerType, VarcharType


class TestHeap:
    def test_insert_assigns_sequential_rowids(self):
        heap = Heap()
        assert heap.insert(("a",)) == 1
        assert heap.insert(("b",)) == 2

    def test_explicit_rowid_respected(self):
        heap = Heap()
        heap.insert(("a",), rowid=10)
        assert heap.insert(("b",)) == 11

    def test_explicit_rowid_collision(self):
        heap = Heap()
        heap.insert(("a",), rowid=1)
        with pytest.raises(CatalogError):
            heap.insert(("b",), rowid=1)

    def test_delete_returns_row(self):
        heap = Heap()
        rowid = heap.insert(("a",))
        assert heap.delete(rowid) == ("a",)
        assert len(heap) == 0

    def test_delete_missing(self):
        with pytest.raises(CatalogError):
            Heap().delete(99)

    def test_update(self):
        heap = Heap()
        rowid = heap.insert(("a",))
        assert heap.update(rowid, ("b",)) == ("a",)
        assert heap.get(rowid) == ("b",)

    def test_scan_is_stable_under_mutation(self):
        heap = Heap()
        for i in range(5):
            heap.insert((i,))
        for rowid, _row in heap.scan():
            heap.delete(rowid)  # must not blow up mid-iteration
        assert len(heap) == 0


class TestHashIndex:
    def test_find(self):
        index = HashIndex("ix", ["A"])
        index.add(("x",), 1)
        index.add(("x",), 2)
        assert index.find(("x",)) == {1, 2}

    def test_unique_rejects_duplicates(self):
        index = HashIndex("ix", ["A"], unique=True)
        index.add(("x",), 1)
        with pytest.raises(UniqueViolation):
            index.add(("x",), 2)

    def test_nulls_never_collide(self):
        index = HashIndex("ix", ["A"], unique=True)
        index.add((None,), 1)
        index.add((None,), 2)  # SQL: NULLs are not equal
        assert index.find((None,)) == set()

    def test_remove(self):
        index = HashIndex("ix", ["A"])
        index.add(("x",), 1)
        index.remove(("x",), 1)
        assert index.find(("x",)) == set()
        assert len(index) == 0

    def test_contains(self):
        index = HashIndex("ix", ["A"])
        index.add(("k",), 5)
        assert index.contains(("k",))
        assert not index.contains(("other",))


class TestSortedIndex:
    def test_range_scan(self):
        index = SortedIndex("ix", ["N"])
        for i in [5, 1, 3, 9, 7]:
            index.add((i,), i * 10)
        assert index.range_scan((3,), (7,)) == [30, 50, 70]

    def test_range_scan_exclusive(self):
        index = SortedIndex("ix", ["N"])
        for i in range(1, 6):
            index.add((i,), i)
        assert index.range_scan((2,), (4,), include_low=False, include_high=False) == [3]

    def test_unbounded_sides(self):
        index = SortedIndex("ix", ["N"])
        for i in [2, 4, 6]:
            index.add((i,), i)
        assert index.range_scan(None, (4,)) == [2, 4]
        assert index.range_scan((4,), None) == [4, 6]

    def test_unique_enforced(self):
        index = SortedIndex("ix", ["N"], unique=True)
        index.add((1,), 1)
        with pytest.raises(UniqueViolation):
            index.add((1,), 2)

    def test_find_and_remove(self):
        index = SortedIndex("ix", ["N"])
        index.add((3,), 1)
        index.add((3,), 2)
        assert index.find((3,)) == {1, 2}
        index.remove((3,), 1)
        assert index.find((3,)) == {2}


def make_table():
    schema = TableSchema(
        "T",
        [
            Column("K", VarcharType(10)),
            Column("N", IntegerType()),
        ],
        primary_key=("K",),
    )
    return Table(schema)


class TestTable:
    def test_pk_index_created(self):
        table = make_table()
        assert "PK_T" in table.indexes
        assert table.indexes["PK_T"].unique

    def test_insert_updates_indexes(self):
        table = make_table()
        rowid, _ = table.insert(("a", 1))
        assert table.indexes["PK_T"].find(("a",)) == {rowid}

    def test_pk_duplicate_rejected(self):
        table = make_table()
        table.insert(("a", 1))
        with pytest.raises(UniqueViolation):
            table.insert(("a", 2))

    def test_delete_cleans_indexes(self):
        table = make_table()
        rowid, _ = table.insert(("a", 1))
        table.delete(rowid)
        assert table.indexes["PK_T"].find(("a",)) == set()

    def test_update_moves_index_entries(self):
        table = make_table()
        rowid, _ = table.insert(("a", 1))
        table.update(rowid, ("b", 2))
        assert table.indexes["PK_T"].find(("a",)) == set()
        assert table.indexes["PK_T"].find(("b",)) == {rowid}

    def test_update_to_existing_key_rejected(self):
        table = make_table()
        table.insert(("a", 1))
        rowid, _ = table.insert(("b", 2))
        with pytest.raises(UniqueViolation):
            table.update(rowid, ("a", 9))

    def test_update_same_key_allowed(self):
        table = make_table()
        rowid, _ = table.insert(("a", 1))
        table.update(rowid, ("a", 2))  # key unchanged: no self-collision
        assert table.row(rowid) == ("a", 2)

    def test_add_index_backfills(self):
        table = make_table()
        table.insert(("a", 5))
        table.insert(("b", 5))
        index = SortedIndex("IX_N", ["N"])
        table.add_index(index)
        assert index.find((5,)) == {1, 2}

    def test_add_index_unknown_column(self):
        table = make_table()
        with pytest.raises(CatalogError):
            table.add_index(HashIndex("IX_BAD", ["NOPE"]))

    def test_duplicate_index_name(self):
        table = make_table()
        with pytest.raises(CatalogError):
            table.add_index(HashIndex("PK_T", ["N"]))

    def test_index_leading_on(self):
        table = make_table()
        assert table.index_leading_on("K") is table.indexes["PK_T"]
        assert table.index_leading_on("N") is None
