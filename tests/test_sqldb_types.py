"""Unit tests for the SQL type system."""

import datetime as dt

import pytest

from repro.errors import InvalidDatalinkValue, TypeMismatchError
from repro.sqldb.types import (
    Blob,
    BlobType,
    BooleanType,
    CharType,
    Clob,
    ClobType,
    DatalinkType,
    DatalinkValue,
    DateType,
    DoubleType,
    IntegerType,
    TimestampType,
    VarcharType,
    type_from_name,
    value_from_json,
    value_to_json,
)


class TestIntegerType:
    def test_accepts_int(self):
        assert IntegerType().validate(42) == 42

    def test_accepts_integral_float(self):
        assert IntegerType().validate(3.0) == 3

    def test_accepts_numeric_string(self):
        assert IntegerType().validate("17") == 17

    def test_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            IntegerType().validate(3.5)

    def test_rejects_boolean(self):
        with pytest.raises(TypeMismatchError):
            IntegerType().validate(True)

    def test_null_passes(self):
        assert IntegerType().validate(None) is None


class TestDoubleType:
    def test_accepts_int_and_float(self):
        assert DoubleType().validate(2) == 2.0
        assert DoubleType().validate(2.5) == 2.5

    def test_accepts_string(self):
        assert DoubleType().validate("1.5e3") == 1500.0

    def test_rejects_text(self):
        with pytest.raises(TypeMismatchError):
            DoubleType().validate("abc")


class TestBooleanType:
    def test_accepts_bool(self):
        assert BooleanType().validate(True) is True

    def test_accepts_zero_one(self):
        assert BooleanType().validate(0) is False
        assert BooleanType().validate(1) is True

    def test_accepts_keywords(self):
        assert BooleanType().validate("true") is True

    def test_rejects_other_ints(self):
        with pytest.raises(TypeMismatchError):
            BooleanType().validate(2)

    def test_literal(self):
        assert BooleanType().to_literal(True) == "TRUE"


class TestVarcharType:
    def test_length_enforced(self):
        with pytest.raises(TypeMismatchError):
            VarcharType(3).validate("abcd")

    def test_exact_length_ok(self):
        assert VarcharType(3).validate("abc") == "abc"

    def test_numbers_coerced_to_text(self):
        assert VarcharType(10).validate(42) == "42"

    def test_rejects_bytes(self):
        with pytest.raises(TypeMismatchError):
            VarcharType(10).validate(b"raw")

    def test_literal_escapes_quotes(self):
        assert VarcharType(20).to_literal("o'neill") == "'o''neill'"

    def test_ddl(self):
        assert VarcharType(30).ddl() == "VARCHAR(30)"

    def test_zero_size_rejected(self):
        with pytest.raises(TypeMismatchError):
            VarcharType(0)


class TestCharType:
    def test_pads_to_size(self):
        assert CharType(5).validate("ab") == "ab   "

    def test_ddl(self):
        assert CharType(4).ddl() == "CHAR(4)"


class TestTemporalTypes:
    def test_date_from_iso(self):
        assert DateType().validate("2000-03-27") == dt.date(2000, 3, 27)

    def test_date_from_datetime(self):
        value = DateType().validate(dt.datetime(2000, 3, 27, 12, 0))
        assert value == dt.date(2000, 3, 27)

    def test_bad_date_string(self):
        with pytest.raises(TypeMismatchError):
            DateType().validate("27/03/2000")

    def test_timestamp_from_iso(self):
        value = TimestampType().validate("2000-03-27T09:30:00")
        assert value == dt.datetime(2000, 3, 27, 9, 30)

    def test_timestamp_promotes_date(self):
        value = TimestampType().validate(dt.date(2000, 1, 1))
        assert value == dt.datetime(2000, 1, 1)

    def test_literals(self):
        assert DateType().to_literal(dt.date(2000, 1, 2)) == "DATE '2000-01-02'"


class TestLobTypes:
    def test_blob_from_bytes(self):
        blob = BlobType().validate(b"\x00\x01")
        assert isinstance(blob, Blob)
        assert len(blob) == 2

    def test_blob_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            BlobType().validate("text")

    def test_clob_from_str(self):
        clob = ClobType().validate("a turbulent description")
        assert isinstance(clob, Clob)
        assert len(clob) == 23

    def test_clob_rejects_bytes(self):
        with pytest.raises(TypeMismatchError):
            ClobType().validate(b"raw")

    def test_blob_equality(self):
        assert Blob(b"a") == Blob(b"a")
        assert Blob(b"a") != Blob(b"b")

    def test_blob_hex_literal(self):
        assert BlobType().to_literal(Blob(b"\xff")) == "X'ff'"


class TestDatalinkValue:
    def test_parse_plain_url(self):
        value = DatalinkValue("http://fs1.soton.ac.uk/data/run1/ts0001.dat")
        assert value.host == "fs1.soton.ac.uk"
        assert value.directory == "/data/run1"
        assert value.filename == "ts0001.dat"
        assert value.url == "http://fs1.soton.ac.uk/data/run1/ts0001.dat"

    def test_tokenized_url_shape(self):
        value = DatalinkValue("http://h/d/f.dat").with_token("abc123")
        assert value.tokenized_url == "http://h/d/abc123;f.dat"

    def test_tokenized_without_token_is_plain(self):
        value = DatalinkValue("http://h/d/f.dat")
        assert value.tokenized_url == value.url

    def test_parse_tokenized(self):
        value = DatalinkValue.parse_tokenized("http://h/d/tok;f.dat")
        assert value.token == "tok"
        assert value.filename == "f.dat"
        assert value.url == "http://h/d/f.dat"

    def test_server_path(self):
        value = DatalinkValue("http://h/fs/dir/name.bin")
        assert value.server_path == "/fs/dir/name.bin"

    def test_rejects_bad_scheme(self):
        with pytest.raises(InvalidDatalinkValue):
            DatalinkValue("gopher://h/f.dat")

    def test_rejects_directory_url(self):
        with pytest.raises(InvalidDatalinkValue):
            DatalinkValue("http://h/dir/")

    def test_rejects_hostless(self):
        with pytest.raises(InvalidDatalinkValue):
            DatalinkValue("http:///f.dat")

    def test_equality_ignores_token(self):
        a = DatalinkValue("http://h/d/f.dat")
        assert a == a.with_token("t")
        assert hash(a) == hash(a.with_token("t"))

    def test_with_size(self):
        assert DatalinkValue("http://h/d/f.dat").with_size(99).size == 99

    def test_type_coerces_string(self):
        value = DatalinkType().validate("http://h/d/f.dat")
        assert isinstance(value, DatalinkValue)

    def test_type_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            DatalinkType().validate(7)


class TestTypeFromName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INTEGER", "INTEGER"),
            ("int", "INTEGER"),
            ("BIGINT", "INTEGER"),
            ("FLOAT", "DOUBLE"),
            ("REAL", "DOUBLE"),
            ("BOOLEAN", "BOOLEAN"),
            ("DATE", "DATE"),
            ("TIMESTAMP", "TIMESTAMP"),
            ("BLOB", "BLOB"),
            ("CLOB", "CLOB"),
            ("DATALINK", "DATALINK"),
        ],
    )
    def test_known_names(self, name, expected):
        assert type_from_name(name).name == expected

    def test_varchar_size(self):
        assert type_from_name("VARCHAR", 30).size == 30

    def test_varchar_default_size(self):
        assert type_from_name("VARCHAR").size == 255

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            type_from_name("GEOMETRY")


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            42,
            3.5,
            "text",
            True,
            Blob(b"\x00\xff", "image/png"),
            Clob("hello", "text/html"),
            DatalinkValue("http://h/d/f.dat"),
            dt.date(2000, 3, 27),
            dt.datetime(2000, 3, 27, 10, 30, 5),
        ],
    )
    def test_round_trip(self, value):
        assert value_from_json(value_to_json(value)) == value

    def test_blob_preserves_mime(self):
        out = value_from_json(value_to_json(Blob(b"x", "image/gif")))
        assert out.mime_type == "image/gif"

    def test_unserialisable_raises(self):
        with pytest.raises(TypeMismatchError):
            value_to_json(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(TypeMismatchError):
            value_from_json(["mystery", 1])
