"""Tests for UNION / UNION ALL and the web-layer hardening additions."""

import pytest

from repro.errors import SqlSyntaxError, WebError
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE A (k INTEGER PRIMARY KEY, s VARCHAR(5))")
    database.execute("CREATE TABLE B (k INTEGER PRIMARY KEY, s VARCHAR(5))")
    database.execute("INSERT INTO A VALUES (1,'x'),(2,'y'),(3,'z')")
    database.execute("INSERT INTO B VALUES (2,'y'),(3,'q'),(4,'w')")
    return database


class TestUnion:
    def test_union_deduplicates(self, db):
        rows = sorted(db.execute("SELECT k FROM A UNION SELECT k FROM B").rows)
        assert rows == [(1,), (2,), (3,), (4,)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.execute("SELECT k FROM A UNION ALL SELECT k FROM B").rows
        assert len(rows) == 6

    def test_dedup_on_whole_row(self, db):
        # (3,'z') vs (3,'q'): different rows, both kept
        rows = sorted(db.execute("SELECT k, s FROM A UNION SELECT k, s FROM B").rows)
        assert (3, "q") in rows and (3, "z") in rows
        assert rows.count((2, "y")) == 1

    def test_three_way_union(self, db):
        rows = db.execute(
            "SELECT k FROM A WHERE k = 1 UNION SELECT k FROM B WHERE k = 4 "
            "UNION SELECT k FROM A WHERE k = 2"
        ).rows
        assert sorted(rows) == [(1,), (2,), (4,)]

    def test_columns_from_first_branch(self, db):
        result = db.execute("SELECT k AS key1 FROM A UNION SELECT k FROM B")
        assert result.columns == ["KEY1"]

    def test_mismatched_columns_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT k FROM A UNION SELECT k, s FROM B")

    def test_mixed_union_kinds_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute(
                "SELECT k FROM A UNION SELECT k FROM B UNION ALL SELECT k FROM A"
            )

    def test_union_with_filters_and_params(self, db):
        rows = db.execute(
            "SELECT s FROM A WHERE k = ? UNION SELECT s FROM B WHERE k = ?",
            (1, 4),
        ).rows
        assert sorted(rows) == [("w",), ("x",)]

    def test_union_with_nulls(self, db):
        db.execute("CREATE TABLE C (k INTEGER PRIMARY KEY, s VARCHAR(5))")
        db.execute("INSERT INTO C VALUES (9, NULL), (10, NULL)")
        rows = db.execute("SELECT s FROM C UNION SELECT s FROM C").rows
        assert rows == [(None,)]

    def test_union_over_views(self, db):
        db.execute("CREATE VIEW VA AS SELECT k FROM A WHERE k < 3")
        db.execute("CREATE VIEW VB AS SELECT k FROM B WHERE k > 3")
        rows = sorted(db.execute("SELECT k FROM VA UNION SELECT k FROM VB").rows)
        assert rows == [(1,), (2,), (4,)]


class TestWebHardening:
    @pytest.fixture(scope="class")
    def app(self, tmp_path_factory):
        from repro import EasiaApp, build_turbulence_archive

        archive = build_turbulence_archive(n_simulations=1, timesteps=1, grid=8)
        engine = archive.make_engine(str(tmp_path_factory.mktemp("hard")))
        return EasiaApp(
            archive.db, archive.linker, archive.document, archive.users, engine
        )

    @pytest.fixture(scope="class")
    def session(self, app):
        return app.login("guest", "guest")

    def test_non_numeric_page_is_400(self, app, session):
        response = app.get(
            "/search", {"table": "AUTHOR", "page": "abc"}, session_id=session
        )
        assert response.status == 400

    def test_non_numeric_limit_is_400(self, app, session):
        response = app.get(
            "/search", {"table": "AUTHOR", "limit": "lots"}, session_id=session
        )
        assert response.status == 400

    def test_negative_limit_is_400(self, app, session):
        response = app.get(
            "/search", {"table": "AUTHOR", "limit": "-3"}, session_id=session
        )
        assert response.status == 400

    def test_handler_bug_becomes_500(self, app):
        def broken(request):
            raise ZeroDivisionError("bug")

        app.container.register("/broken", broken)
        response = app.container.dispatch("/broken")
        assert response.status == 500
        assert "ZeroDivisionError" in response.text
