"""Tests for SQL views (CREATE VIEW / DROP VIEW)."""

import pytest

from repro.errors import CatalogError, SqlSyntaxError
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE SIM (k VARCHAR(5) PRIMARY KEY, grid INTEGER, "
        "title VARCHAR(40))"
    )
    database.execute(
        "INSERT INTO SIM VALUES ('S1',128,'channel'),('S2',64,'pipe'),"
        "('S3',256,'layer')"
    )
    database.execute(
        "CREATE VIEW BIG_SIMS AS SELECT k, title FROM SIM WHERE grid > 100"
    )
    return database


class TestViewBasics:
    def test_select_star(self, db):
        rows = db.execute("SELECT * FROM BIG_SIMS ORDER BY k").rows
        assert rows == [("S1", "channel"), ("S3", "layer")]

    def test_projection_and_filter_on_view(self, db):
        assert db.execute(
            "SELECT title FROM BIG_SIMS WHERE k = 'S3'"
        ).scalar() == "layer"

    def test_aggregates_over_view(self, db):
        assert db.execute("SELECT COUNT(*) FROM BIG_SIMS").scalar() == 2

    def test_view_reflects_live_data(self, db):
        db.execute("INSERT INTO SIM VALUES ('S4', 512, 'decay')")
        assert db.execute("SELECT COUNT(*) FROM BIG_SIMS").scalar() == 3
        db.execute("DELETE FROM SIM WHERE k = 'S4'")
        assert db.execute("SELECT COUNT(*) FROM BIG_SIMS").scalar() == 2

    def test_join_view_with_base_table(self, db):
        rows = db.execute(
            "SELECT b.title, s.grid FROM BIG_SIMS b "
            "JOIN SIM s ON b.k = s.k ORDER BY b.k"
        ).rows
        assert rows == [("channel", 128), ("layer", 256)]

    def test_view_of_view(self, db):
        db.execute("CREATE VIEW LAYER_ONLY AS SELECT k FROM BIG_SIMS WHERE title = 'layer'")
        assert db.execute("SELECT * FROM LAYER_ONLY").rows == [("S3",)]

    def test_view_with_aggregation(self, db):
        db.execute(
            "CREATE VIEW GRID_STATS AS "
            "SELECT COUNT(*) AS n, MAX(grid) AS biggest FROM SIM"
        )
        assert db.execute("SELECT n, biggest FROM GRID_STATS").first() == (3, 256)

    def test_view_with_subquery(self, db):
        db.execute(
            "CREATE VIEW TOP_SIM AS SELECT k FROM SIM "
            "WHERE grid = (SELECT MAX(grid) FROM SIM)"
        )
        assert db.execute("SELECT * FROM TOP_SIM").rows == [("S3",)]


class TestViewDdl:
    def test_drop_view(self, db):
        db.execute("DROP VIEW BIG_SIMS")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM BIG_SIMS")

    def test_drop_view_if_exists(self, db):
        db.execute("DROP VIEW IF EXISTS NOT_THERE")

    def test_drop_missing_view(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP VIEW NOT_THERE")

    def test_duplicate_view_name_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW BIG_SIMS AS SELECT k FROM SIM")

    def test_view_cannot_shadow_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW SIM AS SELECT k FROM SIM")

    def test_bad_definition_fails_at_create(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW BROKEN AS SELECT nope FROM SIM")

    def test_duplicate_output_columns_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW DUP AS SELECT k, k FROM SIM")

    def test_aliased_duplicates_accepted(self, db):
        db.execute("CREATE VIEW OK AS SELECT k, k AS k2 FROM SIM")
        assert db.execute("SELECT COUNT(*) FROM OK").scalar() == 3

    def test_insert_into_view_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO BIG_SIMS VALUES ('X', 'y')")

    def test_rollback_restores_dropped_view(self, db):
        db.execute("BEGIN")
        db.execute("DROP VIEW BIG_SIMS")
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM BIG_SIMS").scalar() == 2

    def test_rollback_removes_created_view(self, db):
        db.execute("BEGIN")
        db.execute("CREATE VIEW TEMP_V AS SELECT k FROM SIM")
        db.execute("ROLLBACK")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM TEMP_V")

    def test_sysviews_lists_definition(self, db):
        row = db.execute(
            "SELECT VIEW_NAME, DEFINITION FROM SYSVIEWS"
        ).first()
        assert row[0] == "BIG_SIMS"
        assert "grid > 100" in row[1]


class TestViewDurability:
    def test_views_survive_recovery(self, tmp_path):
        d = str(tmp_path)
        db = Database(d)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db.execute("CREATE VIEW V10 AS SELECT k FROM t WHERE v = 10")
        db2 = Database(d)
        assert db2.execute("SELECT * FROM V10").rows == [(1,)]

    def test_views_survive_checkpoint(self, tmp_path):
        d = str(tmp_path)
        db = Database(d)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("CREATE VIEW V10 AS SELECT k FROM t WHERE v = 10")
        db.checkpoint()
        db2 = Database(d)
        assert db2.execute("SELECT * FROM V10").rows == [(1,)]

    def test_dropped_view_stays_dropped(self, tmp_path):
        d = str(tmp_path)
        db = Database(d)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)")
        db.execute("CREATE VIEW V AS SELECT k FROM t")
        db.execute("DROP VIEW V")
        db2 = Database(d)
        with pytest.raises(CatalogError):
            db2.execute("SELECT * FROM V")
