"""Tests for the turbulence workload: generator, schema, archive builder."""

import numpy as np
import pytest

from repro.errors import ForeignKeyViolation, ReproError
from repro.sqldb import Database
from repro.turbulence import (
    CODES,
    TABLES,
    build_turbulence_archive,
    code_archive,
    create_turbulence_schema,
    decode_snapshot,
    encode_snapshot,
    generate_snapshot,
    make_timestep_file,
    snapshot_nbytes,
)
from repro.xuis import validate_xuis


class TestGenerator:
    def test_deterministic(self):
        a = generate_snapshot(8, seed=1, timestep=2)
        b = generate_snapshot(8, seed=1, timestep=2)
        for name in ("u", "v", "w", "p"):
            np.testing.assert_array_equal(a[name], b[name])

    def test_seed_changes_data(self):
        a = generate_snapshot(8, seed=1)
        b = generate_snapshot(8, seed=2)
        assert not np.array_equal(a["u"], b["u"])

    def test_timestep_changes_data(self):
        a = generate_snapshot(8, seed=1, timestep=0)
        b = generate_snapshot(8, seed=1, timestep=1)
        assert not np.array_equal(a["u"], b["u"])

    def test_non_cubic_grid(self):
        fields = generate_snapshot(4, 6, 8)
        assert fields["p"].shape == (4, 6, 8)

    def test_float32(self):
        assert generate_snapshot(4)["u"].dtype == np.float32

    def test_bad_grid(self):
        with pytest.raises(ReproError):
            generate_snapshot(0)

    def test_encode_decode_round_trip(self):
        fields = generate_snapshot(6, seed=3)
        data = encode_snapshot(fields)
        assert data[:4] == b"TURB"
        assert len(data) == snapshot_nbytes(6)
        again = decode_snapshot(data)
        for name in ("u", "v", "w", "p"):
            np.testing.assert_array_equal(again[name], fields[name])

    def test_decode_rejects_garbage(self):
        with pytest.raises(ReproError):
            decode_snapshot(b"nope")

    def test_decode_rejects_truncated(self):
        data = encode_snapshot(generate_snapshot(4))
        with pytest.raises(ReproError):
            decode_snapshot(data[:-10])

    def test_encode_rejects_mismatched_shapes(self):
        fields = generate_snapshot(4)
        fields["p"] = fields["p"][:2]
        with pytest.raises(ReproError):
            encode_snapshot(fields)

    def test_snapshot_nbytes_formula(self):
        assert snapshot_nbytes(4) == 16 + 4 * 4 * 64
        assert snapshot_nbytes(2, 3, 4) == 16 + 4 * 4 * 24

    def test_make_timestep_file(self):
        data = make_timestep_file(5, seed=1, timestep=0)
        assert len(data) == snapshot_nbytes(5)


class TestSchema:
    def test_all_five_tables(self):
        db = Database()
        create_turbulence_schema(db)
        assert db.table_names() == sorted(TABLES)

    def test_referential_integrity_wired(self):
        db = Database()
        create_turbulence_schema(db)
        with pytest.raises(ForeignKeyViolation):
            db.execute(
                "INSERT INTO SIMULATION (SIMULATION_KEY, AUTHOR_KEY, TITLE) "
                "VALUES ('S1', 'GHOST', 't')"
            )

    def test_result_file_composite_pk(self):
        db = Database()
        create_turbulence_schema(db)
        assert db.catalog.schema("RESULT_FILE").primary_key == (
            "FILE_NAME", "SIMULATION_KEY",
        )

    def test_datalink_options_match_paper(self):
        db = Database()
        create_turbulence_schema(db)
        column = db.catalog.schema("RESULT_FILE").column("DOWNLOAD_RESULT")
        spec = column.type.spec
        assert spec.link_control
        assert spec.read_permission == "DB"
        assert spec.integrity == "ALL"
        assert spec.recovery


class TestCodes:
    def test_registry(self):
        assert set(CODES) == {
            "GetImage", "FieldStats", "Subsample", "Vorticity", "EnergySpectrum",
        }

    def test_code_archive_contains_entry(self):
        import io
        import zipfile

        data = code_archive("GetImage")
        with zipfile.ZipFile(io.BytesIO(data)) as zf:
            assert zf.namelist() == ["GetImage.py"]

    def test_unknown_code(self):
        with pytest.raises(ReproError):
            code_archive("Mystery")


class TestArchiveBuilder:
    @pytest.fixture(scope="class")
    def archive(self):
        return build_turbulence_archive(
            n_simulations=3, timesteps=2, grid=8, n_file_servers=2
        )

    def test_row_counts(self, archive):
        db = archive.db
        assert db.execute("SELECT COUNT(*) FROM AUTHOR").scalar() == 4
        assert db.execute("SELECT COUNT(*) FROM SIMULATION").scalar() == 3
        assert db.execute("SELECT COUNT(*) FROM RESULT_FILE").scalar() == 6
        assert db.execute("SELECT COUNT(*) FROM CODE_FILE").scalar() == 5
        assert db.execute("SELECT COUNT(*) FROM VISUALISATION_FILE").scalar() == 1

    def test_datasets_distributed_across_servers(self, archive):
        placements = {server.host: len(server.filesystem) for server in archive.servers}
        assert all(count > 0 for count in placements.values())

    def test_files_linked_under_control(self, archive):
        for row in archive.result_rows():
            value = row["RESULT_FILE.DOWNLOAD_RESULT"]
            server = archive.linker.server(value.host)
            assert server.filesystem.entry(value.server_path).linked

    def test_file_sizes_recorded_accurately(self, archive):
        for row in archive.result_rows():
            value = row["RESULT_FILE.DOWNLOAD_RESULT"]
            server = archive.linker.server(value.host)
            assert server.filesystem.size(value.server_path) == (
                row["RESULT_FILE.FILE_SIZE"]
            )

    def test_select_yields_tokenized_urls(self, archive):
        value = archive.db.execute(
            "SELECT DOWNLOAD_RESULT FROM RESULT_FILE LIMIT 1"
        ).scalar()
        assert value.token is not None
        assert value.size is not None

    def test_document_valid_against_catalog(self, archive):
        assert validate_xuis(archive.document, archive.db) == []

    def test_document_has_operations_and_upload(self, archive):
        column = archive.document.column("RESULT_FILE.DOWNLOAD_RESULT")
        names = [op.name for op in column.operations]
        assert names == [
            "GetImage", "FieldStats", "Subsample",
            "Vorticity", "EnergySpectrum", "SDB", "SliceBrowser",
        ]
        assert column.upload is not None
        assert column.upload.guest_access is False

    def test_author_key_substitution_customised(self, archive):
        fk = archive.document.column("SIMULATION.AUTHOR_KEY").fk
        assert fk.substcolumn == "AUTHOR.NAME"

    def test_users_present(self, archive):
        assert archive.users.user("guest").is_guest
        assert archive.users.user("turbulence").can_download
        assert archive.users.user("admin").can_manage_users

    def test_result_rows_filter(self, archive):
        key = archive.simulation_keys[0]
        rows = archive.result_rows(key)
        assert len(rows) == 2
        assert all(r["RESULT_FILE.SIMULATION_KEY"] == key for r in rows)

    def test_total_archived_bytes(self, archive):
        assert archive.total_archived_bytes > 0

    def test_determinism(self):
        a = build_turbulence_archive(n_simulations=1, timesteps=1, grid=6)
        b = build_turbulence_archive(n_simulations=1, timesteps=1, grid=6)
        va = a.db.execute("SELECT FILE_SIZE FROM RESULT_FILE").scalar()
        vb = b.db.execute("SELECT FILE_SIZE FROM RESULT_FILE").scalar()
        assert va == vb
        row_a = a.result_rows()[0]["RESULT_FILE.DOWNLOAD_RESULT"]
        row_b = b.result_rows()[0]["RESULT_FILE.DOWNLOAD_RESULT"]
        server_a = a.linker.server(row_a.host)
        server_b = b.linker.server(row_b.host)
        assert server_a.filesystem.read(row_a.server_path) == (
            server_b.filesystem.read(row_b.server_path)
        )
