"""Tests for the physics post-processing codes (vorticity, spectrum) and
point-in-time file versioning."""

import json

import numpy as np
import pytest

from repro.errors import FileServerError, OperationError
from repro.turbulence import build_turbulence_archive, decode_snapshot

COLID = "RESULT_FILE.DOWNLOAD_RESULT"


@pytest.fixture(scope="module")
def archive():
    return build_turbulence_archive(n_simulations=1, timesteps=1, grid=12)


@pytest.fixture
def engine(archive, tmp_path):
    return archive.make_engine(str(tmp_path / "sb"))


@pytest.fixture
def row(archive):
    return archive.result_rows()[0]


class TestVorticity:
    def test_produces_pgm(self, engine, row):
        result = engine.invoke("Vorticity", COLID, row, {"slice": "x2"})
        pgm = result.outputs["vorticity.pgm"]
        assert pgm.startswith(b"P5\n12 12\n255\n")
        assert len(pgm) == len(b"P5\n12 12\n255\n") + 144

    def test_differs_from_velocity_slice(self, engine, row):
        vorticity = engine.invoke("Vorticity", COLID, row, {"slice": "x2"})
        velocity = engine.invoke(
            "GetImage", COLID, row, {"slice": "x2", "type": "u"}
        )
        assert vorticity.outputs["vorticity.pgm"] != velocity.outputs["slice.pgm"]

    def test_matches_numpy_curl(self, engine, archive, row):
        """Spot-check the sandboxed finite differences against numpy."""
        server = archive.linker.server(row[COLID].host)
        fields = decode_snapshot(server.filesystem.read(row[COLID].server_path))
        u = fields["u"].astype(np.float64)
        v = fields["v"].astype(np.float64)
        w = fields["w"].astype(np.float64)
        ix = 2
        wx = (np.roll(w, -1, 1) - np.roll(w, 1, 1)) / 2 - (
            np.roll(v, -1, 2) - np.roll(v, 1, 2)) / 2
        wy = (np.roll(u, -1, 2) - np.roll(u, 1, 2)) / 2 - (
            np.roll(w, -1, 0) - np.roll(w, 1, 0)) / 2
        wz = (np.roll(v, -1, 0) - np.roll(v, 1, 0)) / 2 - (
            np.roll(u, -1, 1) - np.roll(u, 1, 1)) / 2
        expected = np.sqrt(wx**2 + wy**2 + wz**2)[ix]
        lo, hi = expected.min(), expected.max()
        expected_pixels = (255 * (expected - lo) / (hi - lo)).astype(int)

        result = engine.invoke("Vorticity", COLID, row, {"slice": "x2"},
                               use_cache=False)
        pgm = result.outputs["vorticity.pgm"]
        header_end = pgm.index(b"255\n") + 4
        pixels = np.frombuffer(pgm[header_end:], dtype=np.uint8).reshape(12, 12)
        # rounding in the sandboxed integer scaling allows off-by-one
        assert np.abs(pixels.astype(int) - expected_pixels).max() <= 1

    def test_bad_slice_rejected(self, engine, row):
        with pytest.raises(OperationError):
            engine.invoke("Vorticity", COLID, row, {"slice": "x99"})


class TestEnergySpectrum:
    def test_produces_spectrum(self, engine, row):
        result = engine.invoke("EnergySpectrum", COLID, row)
        spec = json.loads(result.outputs["spectrum.json"])
        assert spec["k"][0] == 0
        assert len(spec["k"]) == len(spec["E"])
        assert all(e >= 0 for e in spec["E"])

    def test_parseval_total_energy(self, engine, archive, row):
        """Sum of shell energies equals total spectral energy (Parseval)."""
        server = archive.linker.server(row[COLID].host)
        fields = decode_snapshot(server.filesystem.read(row[COLID].server_path))
        physical = sum(
            0.5 * float(np.mean(fields[c].astype(np.float64) ** 2))
            for c in ("u", "v", "w")
        )
        result = engine.invoke("EnergySpectrum", COLID, row, use_cache=False)
        spec = json.loads(result.outputs["spectrum.json"])
        assert sum(spec["E"]) == pytest.approx(spec["total_energy"], rel=1e-9)
        assert spec["total_energy"] == pytest.approx(physical, rel=1e-6)

    def test_energy_concentrated_at_low_k(self, engine, row):
        """The Taylor-Green base flow lives in the lowest wavenumbers."""
        result = engine.invoke("EnergySpectrum", COLID, row)
        spec = json.loads(result.outputs["spectrum.json"])
        low = sum(spec["E"][:4])
        assert low > 0.5 * spec["total_energy"]

    def test_huge_reduction_factor(self, engine, row):
        result = engine.invoke("EnergySpectrum", COLID, row, use_cache=False)
        assert result.reduction_factor > 10


class TestPointInTimeVersions:
    def make_server(self):
        from repro.fileserver import FileServer

        server = FileServer("fs.pit")
        server.put("/data/f.bin", b"version-0")
        return server

    def test_versions_kept_for_recovery_files(self):
        server = self.make_server()
        server.dl_link("/data/f.bin", read_db=False, write_blocked=False,
                       recovery=True)
        server.put("/data/f.bin", b"version-1")
        server.put("/data/f.bin", b"version-2")
        assert server.filesystem.version_count("/data/f.bin") == 2
        assert server.filesystem.read("/data/f.bin") == b"version-2"

    def test_restore_most_recent(self):
        server = self.make_server()
        server.dl_link("/data/f.bin", read_db=False, write_blocked=False,
                       recovery=True)
        server.put("/data/f.bin", b"version-1")
        server.filesystem.restore_version("/data/f.bin")
        assert server.filesystem.read("/data/f.bin") == b"version-0"
        assert server.filesystem.version_count("/data/f.bin") == 0

    def test_restore_specific_point(self):
        server = self.make_server()
        server.dl_link("/data/f.bin", read_db=False, write_blocked=False,
                       recovery=True)
        for i in (1, 2, 3):
            server.put("/data/f.bin", f"version-{i}".encode())
        server.filesystem.restore_version("/data/f.bin", index=1)
        assert server.filesystem.read("/data/f.bin") == b"version-1"
        # later versions are discarded by the rollback
        assert server.filesystem.version_count("/data/f.bin") == 1

    def test_no_versions_without_recovery_flag(self):
        server = self.make_server()
        server.dl_link("/data/f.bin", read_db=False, write_blocked=False,
                       recovery=False)
        server.put("/data/f.bin", b"version-1")
        assert server.filesystem.version_count("/data/f.bin") == 0
        with pytest.raises(FileServerError):
            server.filesystem.restore_version("/data/f.bin")

    def test_unlink_clears_history(self):
        server = self.make_server()
        server.dl_link("/data/f.bin", read_db=False, write_blocked=False,
                       recovery=True)
        server.put("/data/f.bin", b"version-1")
        server.dl_unlink("/data/f.bin", delete=False)
        assert server.filesystem.version_count("/data/f.bin") == 0

    def test_out_of_range_index(self):
        server = self.make_server()
        server.dl_link("/data/f.bin", read_db=False, write_blocked=False,
                       recovery=True)
        server.put("/data/f.bin", b"version-1")
        with pytest.raises(FileServerError):
            server.filesystem.restore_version("/data/f.bin", index=5)
