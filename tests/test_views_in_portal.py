"""Tests for SQL views surfaced through the XUIS and the portal."""

import pytest

from repro import EasiaApp, build_turbulence_archive
from repro.xuis import generate_default_xuis, validate_xuis


@pytest.fixture(scope="module")
def archive():
    base = build_turbulence_archive(n_simulations=2, timesteps=2, grid=8)
    base.db.execute(
        "CREATE VIEW SIMULATION_SUMMARY AS "
        "SELECT s.SIMULATION_KEY AS skey, s.TITLE AS title, a.NAME AS author, "
        "s.GRID_SIZE AS grid FROM SIMULATION s "
        "JOIN AUTHOR a ON s.AUTHOR_KEY = a.AUTHOR_KEY"
    )
    return base


class TestViewsInXuis:
    def test_views_excluded_by_default(self, archive):
        doc = generate_default_xuis(archive.db)
        assert not doc.has_table("SIMULATION_SUMMARY")

    def test_views_included_on_request(self, archive):
        doc = generate_default_xuis(archive.db, include_views=True)
        table = doc.table("SIMULATION_SUMMARY")
        assert [c.name for c in table.columns] == [
            "SKEY", "TITLE", "AUTHOR", "GRID",
        ]
        assert table.column("AUTHOR").type.name == "ANY"
        assert table.alias == "Simulation Summary"

    def test_view_samples_from_data(self, archive):
        doc = generate_default_xuis(archive.db, include_views=True)
        samples = doc.table("SIMULATION_SUMMARY").column("AUTHOR").samples
        assert "Mark Papiani" in samples

    def test_document_with_views_validates(self, archive):
        doc = generate_default_xuis(archive.db, include_views=True)
        assert validate_xuis(doc, archive.db) == []

    def test_round_trips_through_xml(self, archive):
        from repro.xuis import parse_xuis, serialize_xuis

        doc = generate_default_xuis(archive.db, include_views=True)
        again = parse_xuis(serialize_xuis(doc))
        assert again.table("SIMULATION_SUMMARY").column("GRID").type.name == "ANY"


class TestViewsInPortal:
    @pytest.fixture(scope="class")
    def app(self, archive, tmp_path_factory):
        doc = generate_default_xuis(
            archive.db, include_views=True,
            title="UK Turbulence Consortium Archive",
        )
        engine = archive.make_engine(str(tmp_path_factory.mktemp("view-sb")))
        return EasiaApp(archive.db, archive.linker, doc, archive.users, engine)

    @pytest.fixture(scope="class")
    def session(self, app):
        return app.login("guest", "guest")

    def test_view_listed_on_home(self, app, session):
        assert "Simulation Summary" in app.get("/", session_id=session).text

    def test_whole_view_browsable(self, app, session):
        text = app.get(
            "/table", {"name": "SIMULATION_SUMMARY"}, session_id=session
        ).text
        assert "2 row(s)" in text
        assert "Mark Papiani" in text

    def test_qbe_search_on_view(self, app, session):
        text = app.get(
            "/search",
            {"table": "SIMULATION_SUMMARY", "show_TITLE": "on",
             "show_AUTHOR": "on", "val_AUTHOR": "Mark%", "op_AUTHOR": "="},
            session_id=session,
        ).text
        assert "1 row(s)" in text

    def test_view_export(self, app, session):
        response = app.get(
            "/export",
            {"table": "SIMULATION_SUMMARY", "show_SKEY": "on"},
            session_id=session,
        )
        assert response.ok
        assert response.body.decode().startswith("SKEY")
