"""WAL format v2: checksums, LSNs, idempotent recovery, v1 compatibility.

Companion to tests/test_crash_matrix.py (the systematic crash matrix);
this file pins the record format itself, the specific regressions named
in the durability issue, and the recovery edge cases.
"""

import json
import os
import zlib

import pytest

import repro.obs as obs_module
from repro import faultinject
from repro.errors import FaultInjectionError, RecoveryError
from repro.sqldb import Database
from repro.sqldb.types import Blob, Clob
from repro.sqldb.wal import WAL_NAME, CHECKPOINT_NAME, WriteAheadLog


def _make_db(directory, rows=2):
    db = Database(directory)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR(10))")
    for i in range(rows):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
    return db

def _wal_lines(directory):
    with open(os.path.join(directory, WAL_NAME), encoding="utf-8") as fh:
        return [line for line in fh.read().splitlines() if line.strip()]


class TestRecordFormat:
    def test_records_carry_crc_and_monotonic_lsn(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=3)
        lsns = []
        for line in _wal_lines(d):
            tag, crc_hex, payload = line.split("|", 2)
            assert tag == "2"
            assert int(crc_hex, 16) == zlib.crc32(payload.encode()) & 0xFFFFFFFF
            lsns.append(json.loads(payload)["lsn"])
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)

    def test_lsn_continues_across_reopen(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        db2 = Database(d)
        db2.execute("INSERT INTO t VALUES (10, 'x')")
        lsns = [
            json.loads(line.split("|", 2)[2])["lsn"] for line in _wal_lines(d)
        ]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)

    def test_lsn_not_reset_by_checkpoint(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=2)
        before = db._wal.last_lsn
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (10, 'x')")
        lsns = [
            json.loads(line.split("|", 2)[2])["lsn"] for line in _wal_lines(d)
        ]
        assert lsns and min(lsns) > before

    def test_checkpoint_document_carries_watermark_and_epoch(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=2)
        db.checkpoint()
        with open(os.path.join(d, CHECKPOINT_NAME), encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["format"] == 2
        assert doc["epoch"] == 1
        assert doc["lsn"] == 3  # CREATE TABLE + 2 inserts
        assert "tables" in doc["data"]
        db.checkpoint()
        with open(os.path.join(d, CHECKPOINT_NAME), encoding="utf-8") as fh:
            assert json.load(fh)["epoch"] == 2

    def test_commit_lsn_exposed_on_transaction(self, tmp_path):
        db = Database(str(tmp_path))
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)")
        txn = db._txns.begin(explicit=True)
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("COMMIT")
        assert txn.commit_lsn == 2


class TestDoubleReplayRegression:
    """Crash between checkpoint os.replace and WAL truncation: the stale
    records are already inside the snapshot and must not replay again."""

    def test_crash_after_replace_does_not_double_apply(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=3)
        with faultinject.inject_crash("wal.checkpoint.after_replace"):
            db.checkpoint()
        # The WAL still holds every record; the promoted checkpoint holds
        # the same data.  Pre-fix this re-inserted rows (rowid collision).
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 3
        assert sorted(db2.execute("SELECT k FROM t").rows) == [(0,), (1,), (2,)]
        assert db2.recovery_stats["skipped_stale"] == 4  # DDL + 3 inserts
        assert db2.recovery_stats["replayed_txns"] == 0

    def test_exact_interleaving_with_deletes_and_updates(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=3)
        db.execute("UPDATE t SET v = 'upd' WHERE k = 1")
        db.execute("DELETE FROM t WHERE k = 2")
        with faultinject.inject_crash("wal.checkpoint.after_replace"):
            db.checkpoint()
        # Replaying the DELETE a second time would raise (row already
        # gone); replaying the UPDATE would be silently wrong.
        db2 = Database(d)
        assert sorted(db2.execute("SELECT k, v FROM t").rows) == [
            (0, "v0"), (1, "upd"),
        ]

    def test_stale_records_cleared_by_next_checkpoint(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=2)
        with faultinject.inject_crash("wal.checkpoint.after_replace"):
            db.checkpoint()
        db2 = Database(d)
        db2.execute("INSERT INTO t VALUES (10, 'x')")
        db2.checkpoint()
        db3 = Database(d)
        assert db3.execute("SELECT COUNT(*) FROM t").scalar() == 3
        assert db3.recovery_stats["skipped_stale"] == 0

    def test_crash_before_replace_keeps_old_state_valid(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=2)
        with faultinject.inject_crash("wal.checkpoint.tmp_written"):
            db.checkpoint()
        # The old checkpoint (none) plus the intact WAL still recover;
        # the fsynced .tmp was never promoted.
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db2.checkpoint()  # and the leftover .tmp does not block progress
        assert Database(d).execute("SELECT COUNT(*) FROM t").scalar() == 2


class TestBufferedReadRegression:
    """A corrupt line in the middle of the log must be fatal even when the
    whole file fits inside one stream read-ahead buffer (the old
    line-iterator + fh.read() check could miss buffered lines)."""

    def test_corrupt_middle_line_within_one_buffer_chunk(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        wal_path = os.path.join(d, WAL_NAME)
        with open(wal_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        assert sum(len(l) for l in lines) < 8192  # one io buffer chunk
        lines.insert(1, '{"txn": 7, "ops": [{"op": "ins\n')  # torn, then valid
        with open(wal_path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(RecoveryError):
            Database(d)

    def test_bitflip_in_middle_record_detected_by_crc(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        wal_path = os.path.join(d, WAL_NAME)
        with open(wal_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        # Corrupt a value inside record 2 of 3: still valid JSON, but the
        # checksum no longer matches.
        lines[1] = lines[1].replace('"v0"', '"vX"')
        with open(wal_path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(RecoveryError):
            Database(d)

    def test_non_monotonic_lsn_detected(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        wal_path = os.path.join(d, WAL_NAME)
        with open(wal_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write(lines[0])  # replay of an old record appended at the end
        with pytest.raises(RecoveryError):
            Database(d)


class TestTornTail:
    def test_torn_tail_is_truncated_so_later_appends_stay_clean(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=2)
        with faultinject.inject_crash("wal.append.torn"):
            db.execute("INSERT INTO t VALUES (99, 'torn')")
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2
        assert db2.recovery_stats["torn_tail_bytes"] > 0
        # Without tail repair this append would concatenate onto the torn
        # bytes and corrupt the log for every future recovery.
        db2.execute("INSERT INTO t VALUES (3, 'ok')")
        db3 = Database(d)
        assert sorted(db3.execute("SELECT k FROM t").rows) == [(0,), (1,), (3,)]

    def test_manual_torn_final_line_skipped(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        with open(os.path.join(d, WAL_NAME), "a", encoding="utf-8") as fh:
            fh.write('2|00000000|{"lsn": 9, "txn": 9, "ops": [{"op"')
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2


class TestRecoveryEdgeCases:
    def test_empty_wal_file(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        db = Database(d)
        db.checkpoint()  # WAL now zero-length
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2
        assert db2.recovery_stats["replayed_txns"] == 0

    def test_whitespace_only_tail(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        with open(os.path.join(d, WAL_NAME), "a", encoding="utf-8") as fh:
            fh.write("\n\n   \n")
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_checkpoint_without_wal(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=2)
        db.checkpoint()
        os.remove(os.path.join(d, WAL_NAME))
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_wal_without_checkpoint(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        assert not os.path.exists(os.path.join(d, CHECKPOINT_NAME))
        db2 = Database(d)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_lob_and_datalink_values_survive_crash_recovery(self, tmp_path):
        d = str(tmp_path)
        db = Database(d)
        db.execute(
            "CREATE TABLE r (k INTEGER PRIMARY KEY, b BLOB, c CLOB, "
            "d DATALINK)"
        )
        db.execute(
            "INSERT INTO r VALUES (?, ?, ?, ?)",
            (1, Blob(b"\x00\xffbytes", "application/octet-stream"),
             Clob("x" * 2000, "text/plain"), "http://h/data/f.bin"),
        )
        with faultinject.inject_crash("wal.append.torn"):
            db.execute(
                "INSERT INTO r VALUES (?, ?, ?, ?)",
                (2, Blob(b"gone"), Clob("gone"), "http://h/data/g.bin"),
            )
        db2 = Database(d)
        rows = db2.execute("SELECT k, b, c, d FROM r").rows
        assert len(rows) == 1
        k, b, c, dl = rows[0]
        assert (k, b.data, c.text, dl.url) == (
            1, b"\x00\xffbytes", "x" * 2000, "http://h/data/f.bin"
        )


class TestV1Compatibility:
    """Logs and checkpoints written by the pre-v2 code must still recover."""

    def _downgrade_to_v1(self, d):
        """Rewrite the v2 on-disk state exactly as the old code wrote it."""
        wal_path = os.path.join(d, WAL_NAME)
        v1_lines = []
        for line in _wal_lines(d):
            payload = json.loads(line.split("|", 2)[2])
            v1_lines.append(json.dumps(
                {"txn": payload["txn"], "ops": payload["ops"]},
                separators=(",", ":"),
            ))
        with open(wal_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(v1_lines) + ("\n" if v1_lines else ""))
        checkpoint_path = os.path.join(d, CHECKPOINT_NAME)
        if os.path.exists(checkpoint_path):
            with open(checkpoint_path, encoding="utf-8") as fh:
                doc = json.load(fh)
            with open(checkpoint_path, "w", encoding="utf-8") as fh:
                json.dump(doc["data"], fh)  # v1: the snapshot is the document

    def test_v1_wal_without_checkpoint(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=3)
        self._downgrade_to_v1(d)
        db = Database(d)
        assert sorted(db.execute("SELECT k FROM t").rows) == [(0,), (1,), (2,)]
        assert db.recovery_stats["replayed_txns"] == 4

    def test_v1_checkpoint_plus_v1_wal(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=2)
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (10, 'x')")
        self._downgrade_to_v1(d)
        db2 = Database(d)
        assert sorted(db2.execute("SELECT k FROM t").rows) == [(0,), (1,), (10,)]
        assert db2.recovery_stats["checkpoint_lsn"] == 0  # v1: no watermark

    def test_v2_appends_onto_v1_log(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        self._downgrade_to_v1(d)
        db = Database(d)
        db.execute("INSERT INTO t VALUES (10, 'x')")  # appended as v2
        lines = _wal_lines(d)
        assert lines[0].startswith("{") and lines[-1].startswith("2|")
        db2 = Database(d)
        assert sorted(db2.execute("SELECT k FROM t").rows) == [
            (0,), (1,), (10,),
        ]

    def test_v1_torn_final_line_skipped(self, tmp_path):
        d = str(tmp_path)
        _make_db(d, rows=2)
        self._downgrade_to_v1(d)
        with open(os.path.join(d, WAL_NAME), "a", encoding="utf-8") as fh:
            fh.write('{"txn": 99, "ops": [{"op": "ins')
        db = Database(d)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2


class TestObservability:
    def test_recovery_and_fsync_counters(self, tmp_path):
        d = str(tmp_path)
        handle = obs_module.enable()
        try:
            db = Database(d, sync=True)
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)")
            db.execute("INSERT INTO t VALUES (1)")
            assert handle.metrics.counter("wal.append.fsync").value == 2
            db2 = Database(d, sync=True)
            assert handle.metrics.counter("wal.recovery.runs").value == 2
            assert (
                handle.metrics.counter("wal.recovery.replayed_txns").value == 2
            )
            rendered = handle.metrics.render_text()
            assert "wal.recovery.replayed_txns" in rendered
            assert "wal.append.fsync" in rendered
        finally:
            obs_module.disable()

    def test_recovery_stats_none_for_in_memory(self):
        assert Database().recovery_stats is None


class TestFaultInjectionHarness:
    def test_unknown_point_rejected_immediately(self):
        with pytest.raises(FaultInjectionError):
            faultinject.inject_crash("no.such.point")

    def test_unreached_point_fails_fast(self, tmp_path):
        db = _make_db(str(tmp_path), rows=1)
        with pytest.raises(FaultInjectionError, match="never\\s+reached"):
            with faultinject.inject_crash("wal.checkpoint.after_replace"):
                db.execute("SELECT COUNT(*) FROM t")  # no checkpoint here

    def test_injectors_do_not_nest(self):
        with pytest.raises(FaultInjectionError):
            with faultinject.inject_crash("wal.append.torn"):
                with faultinject.inject_crash("wal.append.full_write"):
                    pass  # pragma: no cover

    def test_disarmed_after_exit(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=1)
        with faultinject.inject_crash("wal.append.full_write"):
            db.execute("INSERT INTO t VALUES (50, 'x')")
        assert faultinject.active_injector() is None
        db2 = Database(d)
        db2.execute("INSERT INTO t VALUES (51, 'y')")  # no crash now
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_skip_count_survives_n_hits(self, tmp_path):
        d = str(tmp_path)
        db = _make_db(d, rows=1)
        with faultinject.inject_crash("wal.append.full_write", skip=1) as inj:
            db.execute("INSERT INTO t VALUES (60, 'a')")  # survives
            db.execute("INSERT INTO t VALUES (61, 'b')")  # dies
        assert inj.hits["wal.append.full_write"] == 2
        db2 = Database(d)
        assert sorted(db2.execute("SELECT k FROM t").rows) == [
            (0,), (60,), (61,),
        ]

    def test_standalone_wal_append_positions_lsn(self, tmp_path):
        d = str(tmp_path)
        wal = WriteAheadLog(d)
        wal.append_transaction(1, [{"op": "ddl", "sql": "X"}])
        wal.append_transaction(2, [{"op": "ddl", "sql": "Y"}])
        # A second instance over the same directory continues the sequence.
        wal2 = WriteAheadLog(d)
        lsn = wal2.append_transaction(3, [{"op": "ddl", "sql": "Z"}])
        assert lsn == 3
        assert [r[0] for r in wal2.iter_transactions()] == [1, 2, 3]
