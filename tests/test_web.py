"""Tests for the web layer: servlet container, auth, QBE, forms, rendering,
and the assembled EASIA application."""

import pytest

from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    WebError,
)
from repro.operations import pack_code_archive
from repro.turbulence import build_turbulence_archive
from repro.web import (
    EasiaApp,
    QbeQuery,
    Request,
    Response,
    Restriction,
    ServletContainer,
    User,
    UserManager,
    build_query_from_params,
    escape,
    render_operation_form,
    render_query_form,
)


class TestHttpSubstrate:
    def test_escape(self):
        assert escape('<a b="c">') == "&lt;a b=&quot;c&quot;&gt;"

    def test_response_helpers(self):
        assert Response.html("<p>x</p>").content_type == "text/html"
        assert Response.redirect("/x").status == 302
        assert Response.error("bad", 404).status == 404
        assert Response.data(b"\x00", "image/png").body == b"\x00"

    def test_container_routing(self):
        container = ServletContainer()
        container.register("/hello", lambda req: Response.html("hi"))
        assert container.dispatch("/hello").text == "hi"
        assert container.dispatch("/missing").status == 404

    def test_duplicate_route_rejected(self):
        container = ServletContainer()
        container.register("/a", lambda req: Response.html(""))
        with pytest.raises(WebError):
            container.register("/a", lambda req: Response.html(""))

    def test_errors_become_responses(self):
        container = ServletContainer()

        def boom(request):
            raise AuthorizationError("nope")

        container.register("/secure", boom)
        assert container.dispatch("/secure").status == 403

    def test_sessions(self):
        container = ServletContainer()
        session = container.sessions.create()
        session["k"] = "v"
        assert container.sessions.get(session.session_id)["k"] == "v"
        container.sessions.invalidate(session.session_id)
        assert container.sessions.get(session.session_id) is None

    def test_request_params(self):
        request = Request("/p", {"a": "1"})
        assert request.param("a") == "1"
        assert request.param("b", "d") == "d"
        with pytest.raises(WebError):
            request.require_param("missing")

    def test_request_requires_user(self):
        with pytest.raises(AuthenticationError):
            Request("/p").require_user()


class TestAuth:
    def test_password_check(self):
        user = User("alice", "secret")
        assert user.check_password("secret")
        assert not user.check_password("wrong")

    def test_set_password(self):
        user = User("alice", "old")
        user.set_password("new")
        assert user.check_password("new")
        assert not user.check_password("old")

    def test_roles_and_capabilities(self):
        guest = User("g", "g", role="guest")
        normal = User("u", "u", role="user")
        admin = User("a", "a", role="admin")
        assert guest.is_guest and not guest.can_download
        assert not guest.can_upload_code
        assert normal.can_download and normal.can_upload_code
        assert not normal.can_manage_users
        assert admin.can_manage_users

    def test_guest_operation_gate(self):
        from repro.xuis import OperationSpec, UrlLocation

        guest = User("g", "g", role="guest")
        open_op = OperationSpec("A", guest_access=True, location=UrlLocation("u"))
        closed_op = OperationSpec("B", guest_access=False, location=UrlLocation("u"))
        assert guest.can_run_operation(open_op)
        assert not guest.can_run_operation(closed_op)
        assert User("u", "u").can_run_operation(closed_op)

    def test_unknown_role(self):
        with pytest.raises(AuthorizationError):
            User("x", "x", role="root")

    def test_manager_defaults_guest(self):
        users = UserManager()
        assert users.authenticate("guest", "guest").is_guest

    def test_manager_add_duplicate(self):
        users = UserManager()
        users.add_user("a", "pw")
        with pytest.raises(AuthorizationError):
            users.add_user("a", "pw")

    def test_manager_bad_credentials(self):
        users = UserManager()
        with pytest.raises(AuthenticationError):
            users.authenticate("guest", "wrong")
        with pytest.raises(AuthenticationError):
            users.authenticate("nobody", "x")

    def test_guest_account_protected(self):
        users = UserManager()
        with pytest.raises(AuthorizationError):
            users.remove_user("guest")
        with pytest.raises(AuthorizationError):
            users.set_role("guest", "admin")

    def test_set_role(self):
        users = UserManager()
        users.add_user("a", "pw")
        users.set_role("a", "admin")
        assert users.user("a").can_manage_users


class TestQbe:
    def test_restriction_wildcard_promotion(self):
        assert Restriction("T.A", "=", "Mark%").normalised_op() == "LIKE"
        assert Restriction("T.A", "=", "Mark").normalised_op() == "="
        assert Restriction("T.A", "<", "5%").normalised_op() == "<"

    def test_bad_operator(self):
        with pytest.raises(WebError):
            Restriction("T.A", "~", "x")

    def test_to_sql_shapes(self):
        query = QbeQuery(
            "SIMULATION",
            fields=["SIMULATION.TITLE"],
            restrictions=[Restriction("SIMULATION.GRID_SIZE", ">", 64)],
            order_by="SIMULATION.TITLE",
            limit=10,
        )
        sql, params = query.to_sql()
        assert sql == (
            "SELECT SIMULATION.TITLE FROM SIMULATION "
            "WHERE SIMULATION.GRID_SIZE > ? "
            "ORDER BY SIMULATION.TITLE LIMIT 10"
        )
        assert params == (64,)

    def test_to_sql_all_fields_without_xuis(self):
        sql, params = QbeQuery("T").to_sql()
        assert sql == "SELECT * FROM T"

    def test_descending_order(self):
        sql, _ = QbeQuery("T", order_by="T.A", descending=True).to_sql()
        assert sql.endswith("ORDER BY T.A DESC")

    def test_build_from_form_params(self):
        query = build_query_from_params(
            "simulation",
            {
                "show_TITLE": "on",
                "show_GRID_SIZE": "on",
                "val_GRID_SIZE": "128",
                "op_GRID_SIZE": ">=",
                "val_TITLE": "",
                "order_by": "GRID_SIZE",
                "order_dir": "desc",
                "limit": "5",
            },
        )
        assert set(query.fields) == {"SIMULATION.TITLE", "SIMULATION.GRID_SIZE"}
        assert len(query.restrictions) == 1
        assert query.restrictions[0].op == ">="
        assert query.order_by == "SIMULATION.GRID_SIZE"
        assert query.descending and query.limit == 5


@pytest.fixture(scope="module")
def archive():
    return build_turbulence_archive(n_simulations=2, timesteps=2, grid=10)


@pytest.fixture(scope="module")
def app(archive, tmp_path_factory):
    engine = archive.make_engine(str(tmp_path_factory.mktemp("sandbox")))
    return EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )


@pytest.fixture(scope="module")
def guest_session(app):
    return app.login("guest", "guest")


@pytest.fixture(scope="module")
def user_session(app):
    return app.login("turbulence", "consortium")


RESULT_KEY = {
    "key_FILE_NAME": "ts0000.turb",
    "key_SIMULATION_KEY": "S19990110150000",
}


class TestQbeValidationAgainstXuis:
    def test_hidden_column_not_queryable(self, archive):
        from repro.xuis import Customizer

        doc = Customizer(archive.document).hide_column("AUTHOR.EMAIL").document
        query = QbeQuery("AUTHOR", fields=["AUTHOR.EMAIL"])
        with pytest.raises(WebError):
            query.to_sql(doc.table("AUTHOR"))

    def test_unknown_restriction_rejected(self, archive):
        query = QbeQuery(
            "AUTHOR", restrictions=[Restriction("AUTHOR.GHOST", "=", 1)]
        )
        with pytest.raises(WebError):
            query.to_sql(archive.document.table("AUTHOR"))


class TestForms:
    def test_query_form_contents(self, archive):
        html = render_query_form(archive.document.table("SIMULATION"))
        assert 'name="show_TITLE"' in html
        assert 'name="op_GRID_SIZE"' in html
        assert "sample values..." in html
        assert 'value="LIKE"' in html

    def test_operation_form_contents(self, archive):
        operation = archive.document.column(
            "RESULT_FILE.DOWNLOAD_RESULT"
        ).operations[0]
        html = render_operation_form(operation, hidden={"name": "GetImage"})
        assert "Select the slice you wish to visualise:" in html
        assert '<select name="slice" size="4">' in html
        assert 'type="radio" name="type" value="u"' in html
        assert 'type="hidden" name="name" value="GetImage"' in html


class TestAppAuthentication:
    def test_login_returns_session(self, app):
        session_id = app.login("guest", "guest")
        assert session_id

    def test_bad_login(self, app):
        with pytest.raises(AuthenticationError):
            app.login("guest", "wrong")

    def test_unauthenticated_requests_rejected(self, app):
        assert app.get("/").status == 401
        assert app.get("/table", {"name": "AUTHOR"}).status == 401

    def test_logout_invalidates(self, app):
        session_id = app.login("guest", "guest")
        app.get("/logout", session_id=session_id)
        assert app.get("/", session_id=session_id).status == 401

    def test_login_form_rendered_on_get(self, app):
        response = app.get("/login")
        assert 'name="password"' in response.text


class TestAppBrowsing:
    def test_home_lists_tables(self, app, guest_session):
        text = app.get("/", session_id=guest_session).text
        assert "Numerical Simulations" in text
        assert "/query?table=AUTHOR" in text

    def test_query_form(self, app, guest_session):
        response = app.get(
            "/query", {"table": "SIMULATION"}, session_id=guest_session
        )
        assert response.ok and "Query" in response.text

    def test_search_with_restriction(self, app, guest_session):
        response = app.get(
            "/search",
            {
                "table": "SIMULATION",
                "show_TITLE": "on",
                "show_AUTHOR_KEY": "on",
                "val_GRID_SIZE": "10",
                "op_GRID_SIZE": "=",
            },
            session_id=guest_session,
        )
        assert "2 row(s)" in response.text

    def test_search_wildcard(self, app, guest_session):
        response = app.get(
            "/search",
            {
                "table": "AUTHOR",
                "show_NAME": "on",
                "val_NAME": "%Papiani",
                "op_NAME": "=",
            },
            session_id=guest_session,
        )
        assert "1 row(s)" in response.text
        assert "Mark Papiani" in response.text

    def test_fk_substitution_in_results(self, app, guest_session):
        response = app.get(
            "/search",
            {"table": "SIMULATION", "show_AUTHOR_KEY": "on", "show_TITLE": "on"},
            session_id=guest_session,
        )
        # the AUTHOR_KEY cell shows the author's *name* (substcolumn)
        assert "Mark Papiani" in response.text
        assert 'class="fk"' in response.text

    def test_whole_table(self, app, guest_session):
        response = app.get(
            "/table", {"name": "RESULT_FILE"}, session_id=guest_session
        )
        assert "4 row(s)" in response.text
        assert 'class="datalink"' in response.text

    def test_fk_browse(self, app, guest_session):
        response = app.get(
            "/browse/fk",
            {"colid": "SIMULATION.AUTHOR_KEY", "value": "A19990110150000"},
            session_id=guest_session,
        )
        assert "papiani@computer.org" in response.text

    def test_pk_browse(self, app, guest_session):
        response = app.get(
            "/browse/pk",
            {"ref": "RESULT_FILE.SIMULATION_KEY", "value": "S19990110150000"},
            session_id=guest_session,
        )
        assert "2 row(s)" in response.text

    def test_pk_links_rendered(self, app, guest_session):
        response = app.get(
            "/table", {"name": "SIMULATION"}, session_id=guest_session
        )
        assert "/browse/pk?ref=RESULT_FILE.SIMULATION_KEY" in response.text

    def test_lob_rematerialisation(self, app, guest_session):
        response = app.get(
            "/lob",
            {
                "table": "VISUALISATION_FILE",
                "column": "PREVIEW",
                "key_VIS_NAME": "overview.pgm",
            },
            session_id=guest_session,
        )
        assert response.content_type == "image/x-portable-graymap"
        assert response.body.startswith(b"P5")

    def test_datalink_cells_show_size_and_token(self, app, guest_session):
        response = app.get(
            "/table", {"name": "RESULT_FILE"}, session_id=guest_session
        )
        assert "bytes</a>" in response.text
        assert ";ts0000.turb" in response.text  # tokenized URL form


class TestAppDownloads:
    def test_guest_cannot_download(self, app, guest_session, archive):
        url = archive.result_rows()[0]["RESULT_FILE.DOWNLOAD_RESULT"].url
        response = app.get("/download", {"url": url}, session_id=guest_session)
        assert response.status == 403

    def test_user_download(self, app, user_session, archive):
        row = archive.result_rows()[0]
        url = row["RESULT_FILE.DOWNLOAD_RESULT"].url
        response = app.get("/download", {"url": url}, session_id=user_session)
        assert response.ok
        assert len(response.body) == row["RESULT_FILE.FILE_SIZE"]


class TestAppOperations:
    def test_operation_links_in_result_table(self, app, guest_session):
        response = app.get(
            "/table", {"name": "RESULT_FILE"}, session_id=guest_session
        )
        assert "GetImage" in response.text
        assert "FieldStats" in response.text
        # guests do not see the Subsample link
        assert "Subsample" not in response.text

    def test_user_sees_subsample(self, app, user_session):
        response = app.get(
            "/table", {"name": "RESULT_FILE"}, session_id=user_session
        )
        assert "Subsample" in response.text
        assert "Upload code" in response.text

    def test_operation_form(self, app, guest_session):
        response = app.get(
            "/operation/form",
            {"name": "GetImage", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             **RESULT_KEY},
            session_id=guest_session,
        )
        assert response.ok
        assert "Select velocity component or pressure:" in response.text

    def test_operation_run_returns_image(self, app, guest_session):
        response = app.post(
            "/operation/run",
            {"name": "GetImage", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             "slice": "x1", "type": "u", **RESULT_KEY},
            session_id=guest_session,
        )
        assert response.content_type == "image/x-portable-graymap"
        assert response.body.startswith(b"P5")

    def test_guest_cannot_run_restricted_operation(self, app, guest_session):
        response = app.post(
            "/operation/run",
            {"name": "Subsample", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             "factor": "2", **RESULT_KEY},
            session_id=guest_session,
        )
        assert response.status == 403

    def test_stats_page(self, app, guest_session):
        response = app.get("/stats", session_id=guest_session)
        assert response.ok
        assert "GetImage" in response.text


class TestAppUploads:
    CODE = pack_code_archive({
        "MyCount.py": (
            b"data = open(INPUT_FILENAME, 'rb').read()\n"
            b"out = open('count.txt', 'w')\n"
            b"out.write(str(len(data)))\n"
            b"out.close()\n"
        )
    })

    def test_user_upload_runs(self, app, user_session, archive):
        response = app.post(
            "/upload/run",
            {"colid": "RESULT_FILE.DOWNLOAD_RESULT", "class": "MyCount",
             **RESULT_KEY},
            session_id=user_session,
            files={"archive": self.CODE},
        )
        assert response.ok
        expected = archive.result_rows()[0]["RESULT_FILE.FILE_SIZE"]
        assert response.body == str(expected).encode()

    def test_guest_upload_denied(self, app, guest_session):
        response = app.post(
            "/upload/run",
            {"colid": "RESULT_FILE.DOWNLOAD_RESULT", "class": "MyCount",
             **RESULT_KEY},
            session_id=guest_session,
            files={"archive": self.CODE},
        )
        assert response.status == 403

    def test_upload_form_for_user(self, app, user_session):
        response = app.get(
            "/upload/form",
            {"colid": "RESULT_FILE.DOWNLOAD_RESULT", **RESULT_KEY},
            session_id=user_session,
        )
        assert response.ok
        assert 'name="archive"' in response.text

    def test_missing_archive(self, app, user_session):
        response = app.post(
            "/upload/run",
            {"colid": "RESULT_FILE.DOWNLOAD_RESULT", "class": "X", **RESULT_KEY},
            session_id=user_session,
        )
        assert response.status == 400


class TestAppAdmin:
    def test_admin_manages_users(self, app, archive):
        admin_session = app.login("admin", "hpcadmin")
        response = app.post(
            "/admin/users",
            {"action": "add", "username": "newuser", "password": "pw"},
            session_id=admin_session,
        )
        assert response.ok and "newuser" in response.text
        response = app.post(
            "/admin/users",
            {"action": "remove", "username": "newuser"},
            session_id=admin_session,
        )
        assert "newuser" not in response.text

    def test_non_admin_denied(self, app, user_session):
        assert app.get("/admin/users", session_id=user_session).status == 403


class TestPersonalisation:
    def test_role_specific_document(self, archive, tmp_path):
        from repro.xuis import personalise

        docs = personalise(
            archive.document,
            {"guest": lambda c: c.hide_table("CODE_FILE")},
        )
        engine = archive.make_engine(str(tmp_path / "sb"))
        app = EasiaApp(
            archive.db, archive.linker, archive.document, archive.users,
            engine, documents_by_role=docs,
        )
        guest_session = app.login("guest", "guest")
        user_session = app.login("turbulence", "consortium")
        guest_home = app.get("/", session_id=guest_session).text
        user_home = app.get("/", session_id=user_session).text
        assert "CODE_FILE" not in guest_home
        assert "CODE_FILE" in user_home
