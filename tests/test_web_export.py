"""Tests for the /export endpoint (CSV/XML result downloads)."""

import csv
import io
import xml.etree.ElementTree as ET

import pytest

from repro import EasiaApp, build_turbulence_archive


@pytest.fixture(scope="module")
def app(tmp_path_factory):
    archive = build_turbulence_archive(n_simulations=2, timesteps=2, grid=8)
    engine = archive.make_engine(str(tmp_path_factory.mktemp("exp-sandbox")))
    return EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )


@pytest.fixture(scope="module")
def session(app):
    return app.login("guest", "guest")


class TestCsvExport:
    def test_header_and_rows(self, app, session):
        response = app.get(
            "/export",
            {"table": "SIMULATION", "show_SIMULATION_KEY": "on",
             "show_TITLE": "on"},
            session_id=session,
        )
        assert response.content_type == "text/csv"
        reader = list(csv.reader(io.StringIO(response.body.decode())))
        assert reader[0] == ["SIMULATION_KEY", "TITLE"]
        assert len(reader) == 3  # header + 2 simulations

    def test_restrictions_apply(self, app, session):
        response = app.get(
            "/export",
            {"table": "RESULT_FILE", "show_FILE_NAME": "on",
             "val_TIMESTEP": "0", "op_TIMESTEP": "="},
            session_id=session,
        )
        lines = response.body.decode().strip().splitlines()
        assert len(lines) == 3  # header + one ts0000 per simulation

    def test_datalink_exported_as_plain_url(self, app, session):
        response = app.get(
            "/export",
            {"table": "RESULT_FILE", "show_DOWNLOAD_RESULT": "on",
             "limit": "1"},
            session_id=session,
        )
        body = response.body.decode()
        assert "http://fs" in body
        assert ";" not in body.splitlines()[1]  # no access token leaked

    def test_nulls_are_empty(self, app, session):
        response = app.get(
            "/export",
            {"table": "CODE_FILE", "show_SIMULATION_KEY": "on", "limit": "1"},
            session_id=session,
        )
        rows = list(csv.reader(io.StringIO(response.body.decode())))
        assert rows[1] == [""]

    def test_quoting(self, app, session):
        app_db = app.db
        app_db.execute(
            "INSERT INTO AUTHOR VALUES ('AX', 'Comma, \"Quoted\"', NULL, NULL)"
        )
        response = app.get(
            "/export",
            {"table": "AUTHOR", "show_NAME": "on",
             "val_AUTHOR_KEY": "AX", "op_AUTHOR_KEY": "="},
            session_id=session,
        )
        rows = list(csv.reader(io.StringIO(response.body.decode())))
        assert rows[1] == ['Comma, "Quoted"']


class TestXmlExport:
    def test_structure(self, app, session):
        response = app.get(
            "/export",
            {"table": "SIMULATION", "show_TITLE": "on", "format": "xml"},
            session_id=session,
        )
        assert response.content_type == "application/xml"
        root = ET.fromstring(response.body)
        assert root.tag == "resultset"
        assert root.get("table") == "SIMULATION"
        assert len(root.findall("row")) == 2
        assert root.find("row/field").get("name") == "TITLE"


class TestExportGuards:
    def test_unknown_format(self, app, session):
        response = app.get(
            "/export",
            {"table": "AUTHOR", "format": "pdf"},
            session_id=session,
        )
        assert response.status == 400

    def test_requires_login(self, app):
        assert app.get("/export", {"table": "AUTHOR"}).status == 401

    def test_hidden_columns_not_exportable(self, app, tmp_path):
        from repro.xuis import Customizer

        archive_doc = Customizer(app.document).hide_column("AUTHOR.EMAIL").document
        app2 = EasiaApp(app.db, app.linker, archive_doc, app.users, app.engine)
        session = app2.login("guest", "guest")
        response = app2.get(
            "/export",
            {"table": "AUTHOR", "show_EMAIL": "on"},
            session_id=session,
        )
        assert response.status == 400
