"""Tests for web-layer extensions: pagination and progress monitoring."""

import pytest

from repro import EasiaApp, build_turbulence_archive
from repro.web.qbe import QbeQuery, Restriction


@pytest.fixture(scope="module")
def archive():
    # enough result files to paginate: 4 sims x 6 timesteps = 24 rows
    return build_turbulence_archive(n_simulations=4, timesteps=6, grid=8)


@pytest.fixture(scope="module")
def app(archive, tmp_path_factory):
    engine = archive.make_engine(str(tmp_path_factory.mktemp("ext-sandbox")))
    return EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )


@pytest.fixture(scope="module")
def session(app):
    return app.login("guest", "guest")


class TestQbeOffsetAndCount:
    def test_offset_in_sql(self):
        query = QbeQuery("T", limit=10, offset=20)
        sql, _ = query.to_sql()
        assert sql.endswith("LIMIT 10 OFFSET 20")

    def test_count_sql_keeps_restrictions(self):
        query = QbeQuery(
            "T", restrictions=[Restriction("T.A", ">", 5)], limit=10,
        )
        sql, params = query.count_sql()
        assert sql == "SELECT COUNT(*) FROM T WHERE T.A > ?"
        assert params == (5,)

    def test_count_sql_without_restrictions(self):
        assert QbeQuery("T").count_sql() == ("SELECT COUNT(*) FROM T", ())


class TestSearchPagination:
    def _search(self, app, session, page=1, page_size=10):
        return app.get(
            "/search",
            {"table": "RESULT_FILE", "show_FILE_NAME": "on",
             "show_SIMULATION_KEY": "on", "page": page,
             "page_size": page_size},
            session_id=session,
        )

    def test_first_page_limited(self, app, session):
        text = self._search(app, session).text
        assert "10 row(s)" in text
        assert "page 1 of 3 (24 rows)" in text
        assert 'class="next"' in text
        assert 'class="prev"' not in text

    def test_middle_page_has_both_links(self, app, session):
        text = self._search(app, session, page=2).text
        assert 'class="next"' in text
        assert 'class="prev"' in text

    def test_last_page_short(self, app, session):
        text = self._search(app, session, page=3).text
        assert "4 row(s)" in text
        assert 'class="next"' not in text

    def test_pages_disjoint(self, app, session):
        one = self._search(app, session, page=1).text
        two = self._search(app, session, page=2).text
        # the same (file, sim) pair never appears on two pages
        import re

        def keys(text):
            return set(
                re.findall(
                    r'(ts\d{4}\.turb)</td><td><a class="fk" '
                    r'href="[^"]*value=(S\d+)"',
                    text,
                )
            )

        assert keys(one) and keys(two)
        assert not (keys(one) & keys(two))

    def test_single_page_has_no_footer(self, app, session):
        response = app.get(
            "/search",
            {"table": "AUTHOR", "show_NAME": "on"},
            session_id=session,
        )
        assert "page 1 of" not in response.text

    def test_explicit_limit_respected(self, app, session):
        response = app.get(
            "/search",
            {"table": "RESULT_FILE", "show_FILE_NAME": "on", "limit": "3"},
            session_id=session,
        )
        assert "3 row(s)" in response.text


class TestProgressMonitoring:
    def test_empty_initially(self, app):
        fresh = app.login("turbulence", "consortium")
        response = app.get("/operation/progress", session_id=fresh)
        assert "no operations have run" in response.text

    def test_stages_listed_after_invocation(self, app, archive):
        session = app.login("turbulence", "consortium")
        key = archive.simulation_keys[0]
        app.post(
            "/operation/run",
            {"name": "FieldStats", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             "key_FILE_NAME": "ts0000.turb", "key_SIMULATION_KEY": key},
            session_id=session,
        )
        text = app.get("/operation/progress", session_id=session).text
        for stage in ("resolve", "fetch", "unpack", "execute", "collect"):
            assert stage in text
        assert "FieldStats" in text

    def test_sessions_isolated(self, app, archive):
        watcher = app.login("turbulence", "consortium")
        runner = app.login("turbulence", "consortium")
        key = archive.simulation_keys[1]
        app.post(
            "/operation/run",
            {"name": "FieldStats", "colid": "RESULT_FILE.DOWNLOAD_RESULT",
             "key_FILE_NAME": "ts0001.turb", "key_SIMULATION_KEY": key},
            session_id=runner,
        )
        watcher_view = app.get("/operation/progress", session_id=watcher)
        assert "no operations have run" in watcher_view.text

    def test_engine_event_api(self, archive, tmp_path):
        engine = archive.make_engine(str(tmp_path / "sb"))
        row = archive.result_rows()[0]
        engine.invoke(
            "FieldStats", "RESULT_FILE.DOWNLOAD_RESULT", row,
            session_tag="tagged", use_cache=False,
        )
        events = engine.events_for_session("tagged")
        assert [e[3] for e in events] == [
            "resolve", "fetch", "unpack", "execute", "collect",
        ]
