"""Tests for the WSGI adapter (real-HTTP deployment path)."""

import io

import pytest

from repro import EasiaApp, build_turbulence_archive
from repro.web.wsgi import WsgiAdapter, parse_multipart


@pytest.fixture(scope="module")
def adapter(tmp_path_factory):
    archive = build_turbulence_archive(n_simulations=1, timesteps=1, grid=8)
    engine = archive.make_engine(str(tmp_path_factory.mktemp("wsgi-sandbox")))
    app = EasiaApp(
        archive.db, archive.linker, archive.document, archive.users, engine
    )
    return WsgiAdapter(app)


def call(adapter, path, method="GET", query="", body=b"", content_type="",
         cookie=""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    environ = {
        "PATH_INFO": path,
        "REQUEST_METHOD": method,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": content_type,
        "HTTP_COOKIE": cookie,
        "wsgi.input": io.BytesIO(body),
    }
    chunks = adapter(environ, start_response)
    captured["body"] = b"".join(chunks)
    return captured


class TestWsgiAdapter:
    def test_login_form_get(self, adapter):
        result = call(adapter, "/login")
        assert result["status"] == "200 OK"
        assert b"password" in result["body"]

    def test_login_sets_cookie(self, adapter):
        result = call(
            adapter, "/login", method="POST",
            body=b"username=guest&password=guest",
            content_type="application/x-www-form-urlencoded",
        )
        assert result["status"] == "200 OK"
        assert "Set-Cookie" in result["headers"]
        assert result["headers"]["Set-Cookie"].startswith("easia_session=")

    def _session_cookie(self, adapter) -> str:
        result = call(
            adapter, "/login", method="POST",
            body=b"username=guest&password=guest",
            content_type="application/x-www-form-urlencoded",
        )
        return result["headers"]["Set-Cookie"].split(";")[0]

    def test_cookie_carries_session(self, adapter):
        cookie = self._session_cookie(adapter)
        result = call(adapter, "/", cookie=cookie)
        assert result["status"] == "200 OK"
        assert b"Turbulence" in result["body"]

    def test_unauthenticated_is_401(self, adapter):
        assert call(adapter, "/")["status"] == "401 Unauthorized"

    def test_unknown_path_is_404(self, adapter):
        cookie = self._session_cookie(adapter)
        assert call(adapter, "/nope", cookie=cookie)["status"] == "404 Not Found"

    def test_query_string_params(self, adapter):
        cookie = self._session_cookie(adapter)
        result = call(adapter, "/query", query="table=SIMULATION", cookie=cookie)
        assert result["status"] == "200 OK"
        assert b"GRID_SIZE" in result["body"]

    def test_session_via_query_param(self, adapter):
        cookie = self._session_cookie(adapter)
        session_id = cookie.split("=", 1)[1]
        result = call(adapter, "/", query=f"session={session_id}")
        assert result["status"] == "200 OK"

    def test_binary_response(self, adapter):
        cookie = self._session_cookie(adapter)
        result = call(
            adapter, "/operation/run", method="POST",
            body=(b"name=GetImage&colid=RESULT_FILE.DOWNLOAD_RESULT"
                  b"&key_FILE_NAME=ts0000.turb"
                  b"&key_SIMULATION_KEY=S19990110150000"
                  b"&slice=x1&type=u"),
            content_type="application/x-www-form-urlencoded",
            cookie=cookie,
        )
        assert result["status"] == "200 OK"
        assert result["headers"]["Content-Type"] == "image/x-portable-graymap"
        assert result["body"].startswith(b"P5")

    def test_multipart_upload_roundtrip(self, adapter):
        # log in as a full user for upload rights
        login = call(
            adapter, "/login", method="POST",
            body=b"username=turbulence&password=consortium",
            content_type="application/x-www-form-urlencoded",
        )
        cookie = login["headers"]["Set-Cookie"].split(";")[0]

        from repro.operations import pack_code_archive

        code = pack_code_archive({
            "Sz.py": b"data = open(INPUT_FILENAME,'rb').read()\n"
                     b"out = open('sz.txt','w')\nout.write(str(len(data)))\nout.close()\n"
        })
        boundary = "XyZ123"
        parts = []
        for name, value in (
            ("colid", "RESULT_FILE.DOWNLOAD_RESULT"),
            ("class", "Sz"),
            ("key_FILE_NAME", "ts0000.turb"),
            ("key_SIMULATION_KEY", "S19990110150000"),
        ):
            parts.append(
                f'--{boundary}\r\nContent-Disposition: form-data; '
                f'name="{name}"\r\n\r\n{value}\r\n'.encode()
            )
        parts.append(
            f'--{boundary}\r\nContent-Disposition: form-data; '
            f'name="archive"; filename="code.jar"\r\n'
            f"Content-Type: application/octet-stream\r\n\r\n".encode()
            + code + b"\r\n"
        )
        parts.append(f"--{boundary}--\r\n".encode())
        body = b"".join(parts)
        result = call(
            adapter, "/upload/run", method="POST", body=body,
            content_type=f"multipart/form-data; boundary={boundary}",
            cookie=cookie,
        )
        assert result["status"] == "200 OK"
        assert result["body"].isdigit()


class TestMultipartParser:
    def test_fields_and_files(self):
        boundary = "BBB"
        body = (
            b"--BBB\r\nContent-Disposition: form-data; name=\"a\"\r\n\r\n1\r\n"
            b"--BBB\r\nContent-Disposition: form-data; name=\"f\"; "
            b"filename=\"x.bin\"\r\n\r\n\x00\x01\r\n"
            b"--BBB--\r\n"
        )
        fields, files = parse_multipart(
            body, f"multipart/form-data; boundary={boundary}"
        )
        assert fields == {"a": "1"}
        assert files == {"f": b"\x00\x01"}

    def test_missing_boundary(self):
        assert parse_multipart(b"x", "multipart/form-data") == ({}, {})

    def test_quoted_boundary(self):
        body = (
            b"--q1\r\nContent-Disposition: form-data; name=\"k\"\r\n\r\nv\r\n"
            b"--q1--\r\n"
        )
        fields, _files = parse_multipart(
            body, 'multipart/form-data; boundary="q1"'
        )
        assert fields == {"k": "v"}
