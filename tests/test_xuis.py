"""Tests for XUIS generation, serialisation, validation and customisation."""

import pytest

from repro.errors import XuisError, XuisParseError, XuisValidationError
from repro.sqldb import Database
from repro.xuis import (
    Condition,
    Customizer,
    DatabaseResultLocation,
    InputControl,
    OperationSpec,
    ParamSpec,
    RadioControl,
    SelectControl,
    UploadSpec,
    UrlLocation,
    XuisDocument,
    XuisTable,
    assert_valid,
    default_alias,
    generate_default_xuis,
    parse_colid,
    parse_xuis,
    personalise,
    serialize_xuis,
    validate_xuis,
)


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE AUTHOR (author_key VARCHAR(30) PRIMARY KEY, "
        "name VARCHAR(50) NOT NULL)"
    )
    database.execute(
        "CREATE TABLE SIMULATION (simulation_key VARCHAR(30) PRIMARY KEY, "
        "author_key VARCHAR(30) REFERENCES AUTHOR (author_key), "
        "title VARCHAR(80), notes CLOB)"
    )
    database.execute(
        "CREATE TABLE RESULT_FILE (file_name VARCHAR(40), "
        "simulation_key VARCHAR(30) REFERENCES SIMULATION (simulation_key), "
        "download_result DATALINK READ PERMISSION DB, "
        "PRIMARY KEY (file_name, simulation_key))"
    )
    database.execute(
        "INSERT INTO AUTHOR VALUES ('A1', 'Mark Papiani'), ('A2', 'Jasmin Wason')"
    )
    database.execute("INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Channel', NULL)")
    return database


@pytest.fixture
def doc(db):
    return generate_default_xuis(db)


class TestModelBasics:
    def test_parse_colid(self):
        assert parse_colid("author.author_key") == ("AUTHOR", "AUTHOR_KEY")

    def test_parse_colid_rejects_bare(self):
        with pytest.raises(XuisError):
            parse_colid("AUTHOR_KEY")

    def test_condition_ops(self):
        row = {"T.N": 5}
        assert Condition("T.N", "eq", 5).matches(row)
        assert Condition("T.N", "ne", 4).matches(row)
        assert Condition("T.N", "lt", 6).matches(row)
        assert Condition("T.N", "ge", 5).matches(row)
        assert not Condition("T.N", "gt", 5).matches(row)

    def test_condition_like(self):
        assert Condition("T.S", "like", "chan%").matches({"T.S": "channel"})

    def test_condition_missing_column_is_false(self):
        assert not Condition("T.X", "eq", 1).matches({"T.N": 1})

    def test_condition_null_is_false(self):
        assert not Condition("T.N", "eq", 1).matches({"T.N": None})

    def test_condition_char_padding(self):
        assert Condition("T.S", "eq", "ab").matches({"T.S": "ab   "})

    def test_condition_unknown_op(self):
        with pytest.raises(XuisError):
            Condition("T.N", "contains", 1)

    def test_condition_bare_column_fallback(self):
        assert Condition("T.N", "eq", 1).matches({"N": 1})

    def test_operation_applies_all_conditions(self):
        op = OperationSpec(
            "X",
            conditions=[
                Condition("T.A", "eq", 1),
                Condition("T.B", "eq", 2),
            ],
        )
        assert op.applies_to({"T.A": 1, "T.B": 2})
        assert not op.applies_to({"T.A": 1, "T.B": 3})

    def test_operation_requires_name(self):
        with pytest.raises(XuisError):
            OperationSpec("")

    def test_controls_accept_and_default(self):
        select = SelectControl("s", [("a", "A"), ("b", "B")])
        assert select.default_value() == "a"
        assert select.accepts("b") and not select.accepts("z")
        radio = RadioControl("r", [("u", "u speed")])
        assert radio.default_value() == "u"
        free = InputControl("f", default="42")
        assert free.accepts("anything") and free.default_value() == "42"

    def test_document_lookup(self, doc):
        assert doc.table("author").name == "AUTHOR"
        assert doc.column("SIMULATION.TITLE").name == "TITLE"
        with pytest.raises(XuisError):
            doc.table("NOPE")
        with pytest.raises(XuisError):
            doc.column("SIMULATION.NOPE")


class TestGeneration:
    def test_all_tables_present(self, doc):
        assert {t.name for t in doc.tables} == {
            "AUTHOR", "SIMULATION", "RESULT_FILE",
        }

    def test_types_and_sizes(self, doc):
        column = doc.column("AUTHOR.AUTHOR_KEY")
        assert column.type.name == "VARCHAR"
        assert column.type.size == 30
        assert doc.column("SIMULATION.NOTES").type.name == "CLOB"
        assert doc.column("RESULT_FILE.DOWNLOAD_RESULT").type.is_datalink

    def test_samples_from_data(self, doc):
        assert doc.column("AUTHOR.NAME").samples == [
            "Mark Papiani", "Jasmin Wason",
        ]

    def test_pk_refby(self, doc):
        refby = doc.column("AUTHOR.AUTHOR_KEY").pk.refby
        assert refby == ["SIMULATION.AUTHOR_KEY"]
        sim_pk = doc.column("SIMULATION.SIMULATION_KEY").pk.refby
        assert sim_pk == ["RESULT_FILE.SIMULATION_KEY"]

    def test_fk_captured(self, doc):
        fk = doc.column("SIMULATION.AUTHOR_KEY").fk
        assert fk.tablecolumn == "AUTHOR.AUTHOR_KEY"
        assert fk.substcolumn is None

    def test_composite_primary_key(self, doc):
        assert doc.table("RESULT_FILE").primary_key == [
            "RESULT_FILE.FILE_NAME", "RESULT_FILE.SIMULATION_KEY",
        ]

    def test_default_aliases(self, doc):
        assert doc.table("RESULT_FILE").alias == "Result File"
        assert doc.column("SIMULATION.SIMULATION_KEY").alias == "Simulation Key"

    def test_default_alias_function(self):
        assert default_alias("RESULT_FILE") == "Result File"

    def test_default_is_valid(self, doc, db):
        assert validate_xuis(doc, db) == []


class TestSerialisationRoundTrip:
    def test_structure_survives(self, doc):
        text = serialize_xuis(doc)
        again = parse_xuis(text)
        assert {t.name for t in again.tables} == {t.name for t in doc.tables}
        for table in doc.tables:
            other = again.table(table.name)
            assert other.primary_key == table.primary_key
            assert [c.colid for c in other.columns] == [
                c.colid for c in table.columns
            ]
            for mine, theirs in zip(table.columns, other.columns):
                assert mine.type == theirs.type
                assert mine.samples == theirs.samples

    def test_paper_fragment_shape(self, doc):
        text = serialize_xuis(doc)
        assert '<table name="AUTHOR" primaryKey="AUTHOR.AUTHOR_KEY">' in text
        assert "<tablealias>" in text
        assert '<refby tablecolumn="SIMULATION.AUTHOR_KEY"' in text
        assert "<sample>" in text

    def test_operation_round_trip(self, doc):
        op = OperationSpec(
            "GetImage",
            type="JAVA",
            filename="GetImage.class",
            format="jar",
            guest_access=True,
            conditions=[Condition("RESULT_FILE.SIMULATION_KEY", "eq", "S1")],
            location=DatabaseResultLocation(
                "RESULT_FILE.DOWNLOAD_RESULT",
                [Condition("RESULT_FILE.FILE_NAME", "eq", "GetImage.jar")],
            ),
            params=[
                ParamSpec("slice:", SelectControl("slice", [("x0", "x0=0.0")], size=4)),
                ParamSpec("component:", RadioControl("type", [("u", "u speed")])),
                ParamSpec("note:", InputControl("note", default="hi")),
            ],
            description="Visualise a slice",
        )
        doc.column("RESULT_FILE.DOWNLOAD_RESULT").operations.append(op)
        again = parse_xuis(serialize_xuis(doc))
        parsed = again.column("RESULT_FILE.DOWNLOAD_RESULT").operations[0]
        assert parsed.name == "GetImage"
        assert parsed.guest_access is True
        assert parsed.conditions[0].value == "S1"
        assert parsed.location.colid == "RESULT_FILE.DOWNLOAD_RESULT"
        assert parsed.location.conditions[0].value == "GetImage.jar"
        assert isinstance(parsed.params[0].control, SelectControl)
        assert parsed.params[0].control.size == 4
        assert isinstance(parsed.params[1].control, RadioControl)
        assert isinstance(parsed.params[2].control, InputControl)
        assert parsed.params[2].control.default == "hi"
        assert parsed.description == "Visualise a slice"

    def test_url_operation_round_trip(self, doc):
        op = OperationSpec(
            "SDB", guest_access=True,
            location=UrlLocation("http://quagga.ecs.soton.ac.uk:8080/servlet/SDBservlet"),
            description="NCSA Scientific Data Browser",
        )
        doc.column("RESULT_FILE.DOWNLOAD_RESULT").operations.append(op)
        again = parse_xuis(serialize_xuis(doc))
        parsed = again.column("RESULT_FILE.DOWNLOAD_RESULT").operations[0]
        assert isinstance(parsed.location, UrlLocation)
        assert parsed.location.url.endswith("SDBservlet")

    def test_upload_round_trip(self, doc):
        doc.column("RESULT_FILE.DOWNLOAD_RESULT").upload = UploadSpec(
            guest_access=False,
            conditions=[Condition("RESULT_FILE.SIMULATION_KEY", "eq", "S1")],
        )
        again = parse_xuis(serialize_xuis(doc))
        upload = again.column("RESULT_FILE.DOWNLOAD_RESULT").upload
        assert upload is not None
        assert upload.guest_access is False
        assert upload.conditions[0].colid == "RESULT_FILE.SIMULATION_KEY"

    def test_numeric_condition_round_trip(self, doc):
        doc.column("RESULT_FILE.DOWNLOAD_RESULT").operations.append(
            OperationSpec(
                "N", location=UrlLocation("http://x/y"),
                conditions=[Condition("SIMULATION.TITLE", "ne", 42)],
            )
        )
        again = parse_xuis(serialize_xuis(doc))
        cond = again.column("RESULT_FILE.DOWNLOAD_RESULT").operations[0].conditions[0]
        assert cond.value == 42

    def test_hidden_flags_round_trip(self, doc):
        doc.table("AUTHOR").hidden = True
        doc.column("SIMULATION.NOTES").hidden = True
        again = parse_xuis(serialize_xuis(doc))
        assert again.table("AUTHOR").hidden
        assert again.column("SIMULATION.NOTES").hidden


class TestParseErrors:
    def test_malformed_xml(self):
        with pytest.raises(XuisParseError):
            parse_xuis("<xuis><table></xuis>")

    def test_wrong_root(self):
        with pytest.raises(XuisParseError):
            parse_xuis("<notxuis/>")

    def test_missing_required_attribute(self):
        with pytest.raises(XuisParseError):
            parse_xuis('<xuis><table primaryKey=""/></xuis>')

    def test_missing_type(self):
        with pytest.raises(XuisParseError):
            parse_xuis(
                '<xuis><table name="T" primaryKey="">'
                '<column name="A" colid="T.A"/></table></xuis>'
            )

    def test_bad_boolean(self):
        with pytest.raises(XuisParseError):
            parse_xuis(
                '<xuis><table name="T" primaryKey="" hidden="maybe">'
                "</table></xuis>"
            )


class TestValidation:
    def test_dangling_refby(self, doc):
        doc.column("AUTHOR.AUTHOR_KEY").pk.refby.append("GHOST.COL")
        problems = validate_xuis(doc)
        assert any("GHOST.COL" in p for p in problems)

    def test_substcolumn_in_wrong_table(self, doc):
        from repro.xuis.model import XuisFk

        doc.column("SIMULATION.AUTHOR_KEY").fk = XuisFk(
            "AUTHOR.AUTHOR_KEY", "SIMULATION.TITLE"
        )
        problems = validate_xuis(doc)
        assert any("not in referenced table" in p for p in problems)

    def test_operation_without_location(self, doc):
        doc.column("RESULT_FILE.DOWNLOAD_RESULT").operations.append(
            OperationSpec("Broken")
        )
        problems = validate_xuis(doc)
        assert any("no <location>" in p for p in problems)

    def test_location_must_be_datalink(self, doc):
        doc.column("RESULT_FILE.DOWNLOAD_RESULT").operations.append(
            OperationSpec(
                "Broken", location=DatabaseResultLocation("AUTHOR.NAME")
            )
        )
        problems = validate_xuis(doc)
        assert any("not a DATALINK" in p for p in problems)

    def test_upload_on_non_datalink(self, doc):
        doc.column("AUTHOR.NAME").upload = UploadSpec()
        problems = validate_xuis(doc)
        assert any("non-DATALINK" in p for p in problems)

    def test_catalog_type_mismatch(self, doc, db):
        doc.column("AUTHOR.NAME").type.name = "INTEGER"
        problems = validate_xuis(doc, db)
        assert any("INTEGER in the XUIS" in p or "VARCHAR" in p for p in problems)

    def test_catalog_missing_table(self, db):
        doc = XuisDocument([XuisTable("GHOST", columns=[])])
        problems = validate_xuis(doc, db)
        assert any("no such table GHOST" in p for p in problems)
        assert any("has no columns" in p for p in problems)

    def test_assert_valid_raises(self, doc):
        doc.column("AUTHOR.AUTHOR_KEY").pk.refby.append("GHOST.COL")
        with pytest.raises(XuisValidationError):
            assert_valid(doc)

    def test_assert_valid_passes(self, doc, db):
        assert_valid(doc, db)


class TestCustomisation:
    def test_aliases(self, doc):
        custom = (
            Customizer(doc)
            .table_alias("SIMULATION", "Numerical Simulations")
            .column_alias("SIMULATION.TITLE", "Simulation Title")
            .document
        )
        assert custom.table("SIMULATION").display_name == "Numerical Simulations"
        assert custom.column("SIMULATION.TITLE").display_name == "Simulation Title"
        # base untouched (copy-on-construct)
        assert doc.table("SIMULATION").alias == "Simulation"

    def test_hide(self, doc):
        custom = Customizer(doc).hide_table("AUTHOR").hide_column(
            "SIMULATION.NOTES"
        ).document
        assert custom.table("AUTHOR").hidden
        assert [t.name for t in custom.visible_tables()] == [
            "RESULT_FILE", "SIMULATION",
        ]
        assert all(
            c.name != "NOTES"
            for c in custom.table("SIMULATION").visible_columns()
        )

    def test_substitute_fk(self, doc):
        custom = Customizer(doc).substitute_fk(
            "SIMULATION.AUTHOR_KEY", "AUTHOR.NAME"
        ).document
        assert custom.column("SIMULATION.AUTHOR_KEY").fk.substcolumn == "AUTHOR.NAME"

    def test_substitute_fk_wrong_table(self, doc):
        with pytest.raises(XuisError):
            Customizer(doc).substitute_fk(
                "SIMULATION.AUTHOR_KEY", "SIMULATION.TITLE"
            )

    def test_substitute_without_fk(self, doc):
        with pytest.raises(XuisError):
            Customizer(doc).substitute_fk("SIMULATION.TITLE", "AUTHOR.NAME")

    def test_user_defined_relationship(self, doc):
        custom = Customizer(doc).add_relationship(
            "SIMULATION.TITLE", "RESULT_FILE.FILE_NAME"
        ).document
        assert custom.column("SIMULATION.TITLE").fk.tablecolumn == (
            "RESULT_FILE.FILE_NAME"
        )

    def test_samples(self, doc):
        custom = Customizer(doc).set_samples(
            "AUTHOR.NAME", ["user defined sample 1"]
        ).document
        assert custom.column("AUTHOR.NAME").samples == ["user defined sample 1"]

    def test_attach_and_remove_operation(self, doc):
        op = OperationSpec("X", location=UrlLocation("http://x/y"))
        customizer = Customizer(doc).attach_operation(
            "RESULT_FILE.DOWNLOAD_RESULT", op
        )
        assert customizer.document.column(
            "RESULT_FILE.DOWNLOAD_RESULT"
        ).operations[0].name == "X"
        with pytest.raises(XuisError):
            customizer.attach_operation("RESULT_FILE.DOWNLOAD_RESULT", op)
        customizer.remove_operation("RESULT_FILE.DOWNLOAD_RESULT", "X")
        with pytest.raises(XuisError):
            customizer.remove_operation("RESULT_FILE.DOWNLOAD_RESULT", "X")

    def test_upload_requires_datalink(self, doc):
        with pytest.raises(XuisError):
            Customizer(doc).allow_upload("AUTHOR.NAME", UploadSpec())

    def test_personalise(self, doc):
        variants = personalise(
            doc,
            {
                "guest": lambda c: c.hide_table("AUTHOR"),
                "admin": lambda c: c.set_title("Admin view"),
            },
        )
        assert variants["guest"].table("AUTHOR").hidden
        assert not variants["admin"].table("AUTHOR").hidden
        assert variants["admin"].title == "Admin view"
        assert not doc.table("AUTHOR").hidden
